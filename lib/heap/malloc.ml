module As = Pm2_vmem.Address_space
module Layout = Pm2_vmem.Layout
module Cm = Pm2_sim.Cost_model
module B = Blockfmt

module Obs = Pm2_obs

type addr = Layout.addr

exception Out_of_memory

type t = {
  space : As.t;
  cost : Cm.t;
  charge : float -> unit;
  mutable brk : addr; (* end of the mapped arena *)
  mutable free_head : addr; (* 0 = nil *)
  live : (addr, int) Hashtbl.t; (* payload addr -> block size *)
  mutable live_bytes : int;
  obs : Obs.Collector.t;
  node : int;
}

let create ?(obs = Obs.Collector.null) ?(node = 0) space cost ~charge =
  {
    space;
    cost;
    charge;
    brk = Layout.heap_base;
    free_head = 0;
    live = Hashtbl.create 64;
    live_bytes = 0;
    obs;
    node;
  }

let emit t ev = Obs.Collector.emit t.obs ~node:t.node ev

let nil = 0

(* -- free-list management (links live in simulated memory) -- *)

let link_front t b =
  B.write_next_free t.space b t.free_head;
  B.write_prev_free t.space b nil;
  if t.free_head <> nil then B.write_prev_free t.space t.free_head b;
  t.free_head <- b

let unlink t b =
  let prev = B.read_prev_free t.space b in
  let next = B.read_next_free t.space b in
  if prev = nil then t.free_head <- next else B.write_next_free t.space prev next;
  if next <> nil then B.write_prev_free t.space next prev

(* -- arena growth -- *)

let min_growth = 64 * 1024

let extend t need =
  let grow = Layout.page_align_up (max need min_growth) in
  if t.brk + grow > Layout.heap_base + Layout.heap_max_size then raise Out_of_memory;
  As.mmap t.space ~addr:t.brk ~size:grow;
  t.charge (Cm.mmap_cost t.cost ~pages:(grow / Layout.page_size));
  let b = ref t.brk and size = ref grow in
  (* Coalesce with a trailing free block of the old arena, if any. *)
  if t.brk > Layout.heap_base && not (B.read_used_at_footer t.space t.brk) then begin
    let psize = B.read_size_at_footer t.space t.brk in
    let prev = t.brk - psize in
    unlink t prev;
    b := prev;
    size := !size + psize
  end;
  t.brk <- t.brk + grow;
  B.write_tags t.space !b ~size:!size ~used:false;
  link_front t !b

(* -- allocation -- *)

let find_first_fit t need =
  let steps = ref 0 in
  let rec loop b =
    if b = nil then None
    else begin
      incr steps;
      if B.read_size t.space b >= need then Some b
      else loop (B.read_next_free t.space b)
    end
  in
  let r = loop t.free_head in
  t.charge (float_of_int !steps *. t.cost.Cm.free_list_step);
  r

let place t b need =
  let bsize = B.read_size t.space b in
  unlink t b;
  if bsize - need >= B.min_block then begin
    let rest = b + need in
    B.write_tags t.space rest ~size:(bsize - need) ~used:false;
    link_front t rest;
    B.write_tags t.space b ~size:need ~used:true;
    if Obs.Collector.enabled t.obs then
      emit t (Obs.Event.Block_split { heap = Obs.Event.Local; addr = rest; bytes = bsize - need })
  end
  else B.write_tags t.space b ~size:bsize ~used:true;
  let payload = B.payload_addr b in
  Hashtbl.replace t.live payload (B.read_size t.space b);
  t.live_bytes <- t.live_bytes + B.payload_of_block (B.read_size t.space b);
  payload

let malloc t size =
  if size <= 0 then invalid_arg "Malloc.malloc: size <= 0";
  t.charge t.cost.Cm.alloc_fixed;
  let need = B.block_size_for ~payload:size in
  let payload =
    match find_first_fit t need with
    | Some b -> place t b need
    | None ->
      extend t need;
      (match find_first_fit t need with
       | Some b -> place t b need
       | None -> raise Out_of_memory)
  in
  if Obs.Collector.enabled t.obs then
    emit t (Obs.Event.Block_alloc { heap = Obs.Event.Local; addr = payload; bytes = size });
  payload

let validate_live t p =
  match Hashtbl.find_opt t.live p with
  | Some size -> size
  | None -> invalid_arg (Printf.sprintf "Malloc.free: 0x%x is not a live block" p)

let free t p =
  let _size = validate_live t p in
  t.charge t.cost.Cm.alloc_fixed;
  Hashtbl.remove t.live p;
  let b = ref (B.block_of_payload p) in
  let size = ref (B.read_size t.space !b) in
  t.live_bytes <- t.live_bytes - B.payload_of_block !size;
  if Obs.Collector.enabled t.obs then
    emit t
      (Obs.Event.Block_free
         { heap = Obs.Event.Local; addr = p; bytes = B.payload_of_block !size });
  let freed_size = !size in
  (* Coalesce with the next block. *)
  let next = !b + !size in
  if next < t.brk && not (B.read_used t.space next) then begin
    unlink t next;
    size := !size + B.read_size t.space next
  end;
  (* Coalesce with the previous block. *)
  if !b > Layout.heap_base && not (B.read_used_at_footer t.space !b) then begin
    let psize = B.read_size_at_footer t.space !b in
    let prev = !b - psize in
    unlink t prev;
    b := prev;
    size := !size + psize
  end;
  B.write_tags t.space !b ~size:!size ~used:false;
  link_front t !b;
  if !size <> freed_size && Obs.Collector.enabled t.obs then
    emit t (Obs.Event.Block_coalesce { heap = Obs.Event.Local; addr = !b; bytes = !size })

let usable_size t p = B.payload_of_block (validate_live t p)

let live_blocks t = Hashtbl.length t.live

let live_bytes t = t.live_bytes

let heap_bytes t = t.brk - Layout.heap_base

let free_list_length t =
  let rec loop b n = if b = nil then n else loop (B.read_next_free t.space b) (n + 1) in
  loop t.free_head 0

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Collect the free list and check link symmetry. *)
  let free_set = Hashtbl.create 16 in
  let rec walk_list b prev n =
    if n > 1_000_000 then fail "free list loop";
    if b <> nil then begin
      if B.read_prev_free t.space b <> prev then fail "free list prev link broken at 0x%x" b;
      if B.read_used t.space b then fail "used block 0x%x on free list" b;
      Hashtbl.replace free_set b ();
      walk_list (B.read_next_free t.space b) b (n + 1)
    end
  in
  walk_list t.free_head nil 0;
  (* Walk the arena block by block. *)
  let a = ref Layout.heap_base in
  let prev_free = ref false in
  while !a < t.brk do
    let size = B.read_size t.space !a in
    if size < B.min_block || size land 7 <> 0 then fail "bad size %d at 0x%x" size !a;
    if !a + size > t.brk then fail "block 0x%x overruns brk" !a;
    let used = B.read_used t.space !a in
    if B.read_size_at_footer t.space (!a + size) <> size then fail "footer mismatch at 0x%x" !a;
    if B.read_used_at_footer t.space (!a + size) <> used then fail "footer flag mismatch at 0x%x" !a;
    if used then begin
      if not (Hashtbl.mem t.live (B.payload_addr !a)) then
        fail "used block 0x%x not in live table" !a
    end
    else begin
      if !prev_free then fail "uncoalesced free blocks at 0x%x" !a;
      if not (Hashtbl.mem free_set !a) then fail "free block 0x%x not on free list" !a;
      Hashtbl.remove free_set !a
    end;
    prev_free := not used;
    a := !a + size
  done;
  if !a <> t.brk then fail "arena walk ended at 0x%x, brk 0x%x" !a t.brk;
  if Hashtbl.length free_set <> 0 then fail "free list contains stale blocks"
