module As = Pm2_vmem.Address_space
module Layout = Pm2_vmem.Layout
module Cm = Pm2_sim.Cost_model
module B = Blockfmt

module Obs = Pm2_obs

type addr = Layout.addr

exception Out_of_memory

type error =
  | Heap_exhausted
  | Invalid_free of addr

let error_to_string = function
  | Heap_exhausted -> "local heap segment exhausted"
  | Invalid_free a -> Printf.sprintf "Malloc.free: 0x%x is not a live block" a

type policy =
  | First_fit
  | Segregated

let policy_to_string = function
  | First_fit -> "first-fit"
  | Segregated -> "segregated"

(* Segregated layout (dlmalloc-style): exact small bins for block sizes
   32 .. 504 at 8-byte granularity (block sizes are always 8-aligned, so
   each small bin holds blocks of exactly one size), plus one large
   first-fit tail bin for blocks >= 512. *)
let small_bin_count = 60

let large_threshold = B.min_block + (8 * small_bin_count) (* 512 *)

let segregated_bins = small_bin_count + 1

type t = {
  space : As.t;
  cost : Cm.t;
  charge : float -> unit;
  policy : policy;
  mutable brk : addr; (* end of the mapped arena *)
  bins : addr array; (* free-list heads, 0 = nil; First_fit uses bins.(0) *)
  binmap : Pm2_util.Bitset.t; (* bit per non-empty bin (dlmalloc's binmap) *)
  live : (addr, int) Hashtbl.t; (* payload addr -> block size *)
  mutable live_bytes : int;
  obs : Obs.Collector.t;
  node : int;
}

let create ?(obs = Obs.Collector.null) ?(node = 0) ?(policy = First_fit) space cost
    ~charge =
  let nbins = match policy with First_fit -> 1 | Segregated -> segregated_bins in
  {
    space;
    cost;
    charge;
    policy;
    brk = Layout.heap_base;
    bins = Array.make nbins 0;
    binmap = Pm2_util.Bitset.create nbins;
    live = Hashtbl.create 64;
    live_bytes = 0;
    obs;
    node;
  }

let policy t = t.policy

let emit t ev = Obs.Collector.emit t.obs ~node:t.node ev

let nil = 0

(* -- free-list management (links live in simulated memory) -- *)

let bin_index t size =
  match t.policy with
  | First_fit -> 0
  | Segregated ->
    if size < large_threshold then (size - B.min_block) lsr 3 else small_bin_count

(* The bin a block belongs to is derived from its size tag, so [unlink]
   must run before any [write_tags] that changes the size. *)
let link_front t b =
  let idx = bin_index t (B.read_size t.space b) in
  let head = t.bins.(idx) in
  B.write_next_free t.space b head;
  B.write_prev_free t.space b nil;
  if head <> nil then B.write_prev_free t.space head b
  else Pm2_util.Bitset.set t.binmap idx;
  t.bins.(idx) <- b

let unlink t b =
  let idx = bin_index t (B.read_size t.space b) in
  let prev = B.read_prev_free t.space b in
  let next = B.read_next_free t.space b in
  if prev = nil then begin
    t.bins.(idx) <- next;
    if next = nil then Pm2_util.Bitset.clear t.binmap idx
  end
  else B.write_next_free t.space prev next;
  if next <> nil then B.write_prev_free t.space next prev

(* -- arena growth -- *)

let min_growth = 64 * 1024

let extend_mapped t grow =
  As.mmap t.space ~addr:t.brk ~size:grow;
  t.charge (Cm.mmap_cost t.cost ~pages:(grow / Layout.page_size));
  let b = ref t.brk and size = ref grow in
  (* Coalesce with a trailing free block of the old arena, if any. *)
  if t.brk > Layout.heap_base && not (B.read_used_at_footer t.space t.brk) then begin
    let psize = B.read_size_at_footer t.space t.brk in
    let prev = t.brk - psize in
    unlink t prev;
    b := prev;
    size := !size + psize
  end;
  t.brk <- t.brk + grow;
  B.write_tags t.space !b ~size:!size ~used:false;
  link_front t !b

(* Grow the arena by at least [need]; [false] if the segment is spent. *)
let extend t need =
  let grow = Layout.page_align_up (max need min_growth) in
  if t.brk + grow > Layout.heap_base + Layout.heap_max_size then false
  else begin
    extend_mapped t grow;
    true
  end

(* -- allocation -- *)

let scan_bin t steps need b =
  let rec loop b =
    if b = nil then None
    else begin
      incr steps;
      if B.read_size t.space b >= need then Some b
      else loop (B.read_next_free t.space b)
    end
  in
  loop b

let find_fit t need =
  let steps = ref 0 in
  let r =
    match t.policy with
    | First_fit -> scan_bin t steps need t.bins.(0)
    | Segregated ->
      if need < large_threshold then begin
        (* The binmap (one bit per non-empty bin) finds the first bin at
           or above the exact one in a single word scan — one search
           step. Every block there fits: higher small bins hold bigger
           exact sizes, and the large tail holds blocks >= 512 > need. *)
        incr steps;
        match Pm2_util.Bitset.first_set_from t.binmap (bin_index t need) with
        | None -> None
        | Some idx -> Some t.bins.(idx)
      end
      else scan_bin t steps need t.bins.(small_bin_count)
  in
  t.charge (float_of_int !steps *. t.cost.Cm.free_list_step);
  r

let place t b need =
  let bsize = B.read_size t.space b in
  unlink t b;
  if bsize - need >= B.min_block then begin
    let rest = b + need in
    B.write_tags t.space rest ~size:(bsize - need) ~used:false;
    link_front t rest;
    B.write_tags t.space b ~size:need ~used:true;
    if Obs.Collector.enabled t.obs then
      emit t (Obs.Event.Block_split { heap = Obs.Event.Local; addr = rest; bytes = bsize - need })
  end
  else B.write_tags t.space b ~size:bsize ~used:true;
  let payload = B.payload_addr b in
  Hashtbl.replace t.live payload (B.read_size t.space b);
  t.live_bytes <- t.live_bytes + B.payload_of_block (B.read_size t.space b);
  payload

let malloc t size =
  if size <= 0 then invalid_arg "Malloc.malloc: size <= 0";
  t.charge t.cost.Cm.alloc_fixed;
  let need = B.block_size_for ~payload:size in
  let payload =
    match find_fit t need with
    | Some b -> Ok (place t b need)
    | None ->
      if not (extend t need) then Error Heap_exhausted
      else (
        match find_fit t need with
        | Some b -> Ok (place t b need)
        | None -> Error Heap_exhausted)
  in
  (match payload with
   | Ok addr when Obs.Collector.enabled t.obs ->
     emit t (Obs.Event.Block_alloc { heap = Obs.Event.Local; addr; bytes = size })
   | _ -> ());
  payload

let malloc_exn t size =
  match malloc t size with
  | Ok addr -> addr
  | Error _ -> raise Out_of_memory

let validate_live t p =
  match Hashtbl.find_opt t.live p with
  | Some size -> size
  | None -> invalid_arg (Printf.sprintf "Malloc.free: 0x%x is not a live block" p)

let free_live t p =
  t.charge t.cost.Cm.alloc_fixed;
  Hashtbl.remove t.live p;
  let b = ref (B.block_of_payload p) in
  let size = ref (B.read_size t.space !b) in
  t.live_bytes <- t.live_bytes - B.payload_of_block !size;
  if Obs.Collector.enabled t.obs then
    emit t
      (Obs.Event.Block_free
         { heap = Obs.Event.Local; addr = p; bytes = B.payload_of_block !size });
  let freed_size = !size in
  (* Coalesce with the next block. *)
  let next = !b + !size in
  if next < t.brk && not (B.read_used t.space next) then begin
    unlink t next;
    size := !size + B.read_size t.space next
  end;
  (* Coalesce with the previous block. *)
  if !b > Layout.heap_base && not (B.read_used_at_footer t.space !b) then begin
    let psize = B.read_size_at_footer t.space !b in
    let prev = !b - psize in
    unlink t prev;
    b := prev;
    size := !size + psize
  end;
  B.write_tags t.space !b ~size:!size ~used:false;
  link_front t !b;
  if !size <> freed_size && Obs.Collector.enabled t.obs then
    emit t (Obs.Event.Block_coalesce { heap = Obs.Event.Local; addr = !b; bytes = !size })

let free t p =
  if Hashtbl.mem t.live p then Ok (free_live t p) else Error (Invalid_free p)

let free_exn t p =
  match free t p with
  | Ok () -> ()
  | Error e -> invalid_arg (error_to_string e)

let usable_size t p = B.payload_of_block (validate_live t p)

let live_blocks t = Hashtbl.length t.live

let live_bytes t = t.live_bytes

let heap_bytes t = t.brk - Layout.heap_base

let free_list_length t =
  let n = ref 0 in
  Array.iter
    (fun head ->
       let rec loop b = if b <> nil then begin incr n; loop (B.read_next_free t.space b) end in
       loop head)
    t.bins;
  !n

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Collect every bin's list, checking link symmetry and (under
     Segregated) that each block sits in the bin its size maps to. *)
  let free_set = Hashtbl.create 16 in
  let rec walk_list idx b prev n =
    if n > 1_000_000 then fail "free list loop";
    if b <> nil then begin
      if B.read_prev_free t.space b <> prev then fail "free list prev link broken at 0x%x" b;
      if B.read_used t.space b then fail "used block 0x%x on free list" b;
      let size = B.read_size t.space b in
      if bin_index t size <> idx then
        fail "block 0x%x (size %d) in bin %d, belongs in bin %d" b size idx
          (bin_index t size);
      Hashtbl.replace free_set b ();
      walk_list idx (B.read_next_free t.space b) b (n + 1)
    end
  in
  Array.iteri (fun idx head -> walk_list idx head nil 0) t.bins;
  Array.iteri
    (fun idx head ->
       if Pm2_util.Bitset.get t.binmap idx <> (head <> nil) then
         fail "binmap bit %d disagrees with bin head 0x%x" idx head)
    t.bins;
  (* Walk the arena block by block. *)
  let a = ref Layout.heap_base in
  let prev_free = ref false in
  while !a < t.brk do
    let size = B.read_size t.space !a in
    if size < B.min_block || size land 7 <> 0 then fail "bad size %d at 0x%x" size !a;
    if !a + size > t.brk then fail "block 0x%x overruns brk" !a;
    let used = B.read_used t.space !a in
    if B.read_size_at_footer t.space (!a + size) <> size then fail "footer mismatch at 0x%x" !a;
    if B.read_used_at_footer t.space (!a + size) <> used then fail "footer flag mismatch at 0x%x" !a;
    if used then begin
      if not (Hashtbl.mem t.live (B.payload_addr !a)) then
        fail "used block 0x%x not in live table" !a
    end
    else begin
      if !prev_free then fail "uncoalesced free blocks at 0x%x" !a;
      if not (Hashtbl.mem free_set !a) then fail "free block 0x%x not on free list" !a;
      Hashtbl.remove free_set !a
    end;
    prev_free := not used;
    a := !a + size
  done;
  if !a <> t.brk then fail "arena walk ended at 0x%x, brk 0x%x" !a t.brk;
  if Hashtbl.length free_set <> 0 then fail "free list contains stale blocks"
