type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    {
      n = List.length xs;
      mean = mean xs;
      stddev = stddev xs;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      median = percentile 50. xs;
      p95 = percentile 95. xs;
    }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f med=%.2f p95=%.2f max=%.2f"
    s.n s.mean s.stddev s.min s.median s.p95 s.max

module Histogram = struct
  type t = {
    bounds : float array; (* ascending upper bounds; last bucket is overflow *)
    counts : int array; (* length = Array.length bounds + 1 *)
    mutable n : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  (* 1-2-5 series from 1 to 1e7 — covers microsecond latencies and byte
     counts alike. *)
  let default_bounds =
    let decades = [ 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ] in
    Array.of_list
      (List.concat_map (fun d -> [ d; 2. *. d; 5. *. d ]) decades @ [ 1e7 ])

  let create ?(bounds = default_bounds) () =
    if Array.length bounds = 0 then invalid_arg "Histogram.create: no bounds";
    Array.iteri
      (fun i b ->
         if i > 0 && bounds.(i - 1) >= b then
           invalid_arg "Histogram.create: bounds not strictly increasing")
      bounds;
    {
      bounds = Array.copy bounds;
      counts = Array.make (Array.length bounds + 1) 0;
      n = 0;
      sum = 0.;
      min = infinity;
      max = neg_infinity;
    }

  (* Index of the first bound >= x, or the overflow bucket. *)
  let bucket_index t x =
    let lo = ref 0 and hi = ref (Array.length t.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.bounds.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo

  let add t x =
    let i = bucket_index t x in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

  (* The raw extrema are ±infinity before the first sample — never report
     those (they leak into reports as garbage and are not valid JSON). *)
  let min_value t = if t.n = 0 then 0. else t.min
  let max_value t = if t.n = 0 then 0. else t.max
  let num_buckets t = Array.length t.counts

  let bucket_count t i =
    if i < 0 || i >= Array.length t.counts then
      invalid_arg "Histogram.bucket_count: bad index";
    t.counts.(i)

  (* Upper bound of bucket [i]; the overflow bucket reports the largest
     sample seen (or infinity when empty). *)
  let bucket_upper t i =
    if i < Array.length t.bounds then t.bounds.(i)
    else if t.n > 0 then t.max
    else infinity

  let merge a b =
    if a.bounds <> b.bounds then invalid_arg "Histogram.merge: bounds differ";
    let m = create ~bounds:a.bounds () in
    Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
    m.n <- a.n + b.n;
    m.sum <- a.sum +. b.sum;
    m.min <- Stdlib.min a.min b.min;
    m.max <- Stdlib.max a.max b.max;
    m

  (* Bucket-resolution estimate: the upper bound of the bucket holding the
     p-th sample, clamped to the observed range. [None] on the empty
     histogram. *)
  let percentile t p =
    if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
    if t.n = 0 then None
    else begin
      let target =
        Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.n)))
      in
      let rec walk i cum =
        let cum = cum + t.counts.(i) in
        if cum >= target then Stdlib.min (bucket_upper t i) t.max
        else walk (i + 1) cum
      in
      Some (Stdlib.max t.min (walk 0 0))
    end

  let pp ppf t =
    match percentile t 50., percentile t 95., percentile t 99. with
    | Some p50, Some p95, Some p99 ->
      Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f"
        t.n (mean t) p50 p95 p99 t.max
    | _ -> Format.fprintf ppf "n=0"
end

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let n t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min
  let max t = t.max
  let total t = t.total
end
