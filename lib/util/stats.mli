(** Summary statistics for benchmark series (virtual-time measurements). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
}

(** [summarize xs] computes the summary of a non-empty list of samples.
    @raise Invalid_argument on the empty list. *)
val summarize : float list -> summary

val mean : float list -> float
val stddev : float list -> float

(** [percentile p xs] for [p] in [0,100], by linear interpolation on the
    sorted samples. *)
val percentile : float -> float list -> float

val pp_summary : Format.formatter -> summary -> unit

(** Fixed-bucket latency/size histogram for the metrics registry: constant
    memory, O(log buckets) insertion, mergeable across nodes. Percentiles
    are bucket-resolution estimates (upper bound of the covering bucket,
    clamped to the observed min/max). *)
module Histogram : sig
  type t

  (** 1-2-5 series from 1 to 1e7 — covers both µs latencies and byte
      counts. *)
  val default_bounds : float array

  (** [create ?bounds ()] — [bounds] are the strictly increasing bucket
      upper limits; one overflow bucket is added past the last.
      @raise Invalid_argument on empty or unsorted bounds. *)
  val create : ?bounds:float array -> unit -> t

  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  (** Observed extrema; [0.] on the empty histogram (never the internal
      ±infinity sentinels). *)
  val min_value : t -> float

  val max_value : t -> float

  (** Including the overflow bucket. *)
  val num_buckets : t -> int

  val bucket_count : t -> int -> int

  (** Upper bound of bucket [i]; the overflow bucket reports the observed
      maximum. *)
  val bucket_upper : t -> int -> float

  (** [merge a b] is a fresh histogram with the summed counts.
      @raise Invalid_argument if the bucket bounds differ. *)
  val merge : t -> t -> t

  (** [percentile t p] for [p] in [0,100]; [None] on the empty histogram. *)
  val percentile : t -> float -> float option

  val pp : Format.formatter -> t -> unit
end

(** Online accumulator (Welford) for long-running experiment counters. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
end
