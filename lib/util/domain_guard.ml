(* Single-owner tripwire for domain-confined mutable structures.

   The parallel cluster scheduler confines every shared mutable
   structure (delta caches, reliable endpoints, session maps) to the
   coordinator domain: worker domains only ever touch the thread
   context and address space handed to them for a precompute segment.
   A guard makes that confinement executable — the first domain to
   touch the structure claims it, and any later touch from a different
   domain fails fast instead of corrupting state silently. *)

type t = {
  name : string;
  owner : int Atomic.t; (* domain id, or -1 when unclaimed *)
}

let create ~name = { name; owner = Atomic.make (-1) }

let self_id () = (Domain.self () :> int)

let check t =
  let d = self_id () in
  let o = Atomic.get t.owner in
  if o <> d then
    if o = -1 then begin
      (* First touch claims. A lost race here means two domains touched
         an unclaimed guard concurrently — exactly the bug we exist to
         catch. *)
      if not (Atomic.compare_and_set t.owner (-1) d) then
        failwith
          (Printf.sprintf
             "Domain_guard: %s claimed concurrently by domains %d and %d"
             t.name (Atomic.get t.owner) d)
    end
    else
      failwith
        (Printf.sprintf
           "Domain_guard: %s touched by domain %d but owned by domain %d"
           t.name d o)

let release t = Atomic.set t.owner (-1)

let owner t =
  match Atomic.get t.owner with -1 -> None | d -> Some d
