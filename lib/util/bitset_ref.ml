(* The bit-by-bit reference model: the obviously-correct (and obviously
   slow) implementation the word-level {!Bitset} is tested and benchmarked
   against. Deliberately naive — one bool per bit, linear scans. *)

type t = {
  bits : int;
  store : bool array;
}

let create bits =
  if bits < 0 then invalid_arg "Bitset_ref.create";
  { bits; store = Array.make bits false }

let length t = t.bits

let check t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitset_ref: index out of bounds"

let get t i =
  check t i;
  t.store.(i)

let set t i =
  check t i;
  t.store.(i) <- true

let clear t i =
  check t i;
  t.store.(i) <- false

let assign t i v = if v then set t i else clear t i

let count t =
  let n = ref 0 in
  for i = 0 to t.bits - 1 do
    if t.store.(i) then incr n
  done;
  !n

let first_set_from t start =
  let rec go i =
    if i >= t.bits then None else if i >= 0 && t.store.(i) then Some i else go (i + 1)
  in
  go (max start 0)

let first_set t = first_set_from t 0

let find_run t n =
  if n <= 0 then invalid_arg "Bitset_ref.find_run";
  let rec search i =
    if i + n > t.bits then None
    else begin
      let ok = ref true in
      for j = i to i + n - 1 do
        if not t.store.(j) then ok := false
      done;
      if !ok then Some i else search (i + 1)
    end
  in
  search 0

let set_range t i n = for j = i to i + n - 1 do set t j done

let clear_range t i n = for j = i to i + n - 1 do clear t j done

let intersects a b =
  if a.bits <> b.bits then invalid_arg "Bitset_ref.intersects: length mismatch";
  let hit = ref false in
  for i = 0 to a.bits - 1 do
    if a.store.(i) && b.store.(i) then hit := true
  done;
  !hit
