(** Bit-by-bit reference bitset: the executable specification that the
    word-level {!Bitset} is checked against in the randomized differential
    tests, and the baseline the bechamel microbenchmarks measure speedups
    over. One bool per bit, linear scans, no tricks. *)

type t

val create : int -> t
val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val count : t -> int
val first_set : t -> int option
val first_set_from : t -> int -> int option
val find_run : t -> int -> int option
val set_range : t -> int -> int -> unit
val clear_range : t -> int -> int -> unit
val intersects : t -> t -> bool
