(* Word-level bitset. The store is padded to a whole number of 64-bit
   words (read little-endian, so bit [i] still lives in byte [i/8] at
   position [i mod 8], exactly as in the original byte-level layout);
   [byte_size] keeps reporting the logical (bits+7)/8 size that the
   charge accounting is based on. Invariant: the padding bits above
   [bits] in the last word are always zero — every mutation is
   bounds-checked or masked — which lets [count], [equal] and the word
   scans run over whole words without a tail special case. *)

type t = {
  bits : int;
  store : Bytes.t;
}

let words_for bits = (bits + 63) lsr 6

let create bits =
  if bits < 0 then invalid_arg "Bitset.create";
  { bits; store = Bytes.make (words_for bits * 8) '\000' }

let length t = t.bits

let byte_size t = (t.bits + 7) lsr 3

let word_count t = Bytes.length t.store lsr 3

let get_word t k = Bytes.get_int64_le t.store (k lsl 3)

let set_word t k v = Bytes.set_int64_le t.store (k lsl 3) v

let check t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitset: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.store (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.store b
    (Char.chr (Char.code (Bytes.unsafe_get t.store b) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let b = i lsr 3 in
  Bytes.unsafe_set t.store b
    (Char.chr (Char.code (Bytes.unsafe_get t.store b) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i v = if v then set t i else clear t i

(* SWAR popcount (Hacker's Delight 5-2). *)
let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

(* Number of trailing zeros of a non-zero word. *)
let ntz64 x = popcount64 (Int64.logand (Int64.lognot x) (Int64.sub x 1L))

let count t =
  let n = ref 0 in
  for k = 0 to word_count t - 1 do
    n := !n + popcount64 (get_word t k)
  done;
  !n

let first_set_from t start =
  if start >= t.bits then None
  else begin
    let start = max start 0 in
    let nwords = word_count t in
    let k0 = start lsr 6 in
    let rec scan k w =
      if Int64.equal w 0L then
        if k + 1 >= nwords then None else scan (k + 1) (get_word t (k + 1))
      else
        let i = (k lsl 6) + ntz64 w in
        if i >= t.bits then None else Some i
    in
    scan k0 (Int64.logand (get_word t k0) (Int64.shift_left (-1L) (start land 63)))
  end

let first_set t = first_set_from t 0

(* Lowest clear bit index >= start (start < bits), or [t.bits] if all
   remaining bits are set. The padding bits complement to ones, hence
   the clamp. *)
let first_clear_from t start =
  let nwords = word_count t in
  let k0 = start lsr 6 in
  let rec scan k w =
    if Int64.equal w 0L then
      if k + 1 >= nwords then t.bits
      else scan (k + 1) (Int64.lognot (get_word t (k + 1)))
    else min t.bits ((k lsl 6) + ntz64 w)
  in
  scan k0
    (Int64.logand
       (Int64.lognot (get_word t k0))
       (Int64.shift_left (-1L) (start land 63)))

let find_run t n =
  if n <= 0 then invalid_arg "Bitset.find_run";
  let rec search from =
    match first_set_from t from with
    | None -> None
    | Some start ->
      let stop = first_clear_from t start in
      if stop - start >= n then Some start
      else if stop >= t.bits then None
      else search (stop + 1)
  in
  search 0

let range_mask ~lo ~hi =
  Int64.logand (Int64.shift_left (-1L) lo) (Int64.shift_right_logical (-1L) (63 - hi))

let range_op t i n ~value =
  if n > 0 then begin
    check t i;
    check t (i + n - 1);
    let hi = i + n - 1 in
    let k0 = i lsr 6 and k1 = hi lsr 6 in
    for k = k0 to k1 do
      let lo_bit = if k = k0 then i land 63 else 0 in
      let hi_bit = if k = k1 then hi land 63 else 63 in
      let mask = range_mask ~lo:lo_bit ~hi:hi_bit in
      let w = get_word t k in
      set_word t k
        (if value then Int64.logor w mask else Int64.logand w (Int64.lognot mask))
    done
  end

let set_range t i n = range_op t i n ~value:true

let clear_range t i n = range_op t i n ~value:false

let or_into ~into src =
  if into.bits <> src.bits then invalid_arg "Bitset.or_into: length mismatch";
  for k = 0 to word_count into - 1 do
    let w = get_word into k in
    let s = get_word src k in
    if not (Int64.equal s 0L) then set_word into k (Int64.logor w s)
  done

let copy t = { bits = t.bits; store = Bytes.copy t.store }

let equal a b = a.bits = b.bits && Bytes.equal a.store b.store

let iter_set f t =
  for k = 0 to word_count t - 1 do
    let w = ref (get_word t k) in
    let base = k lsl 6 in
    while not (Int64.equal !w 0L) do
      let i = base + ntz64 !w in
      if i < t.bits then f i;
      w := Int64.logand !w (Int64.sub !w 1L)
    done
  done

let intersects a b =
  if a.bits <> b.bits then invalid_arg "Bitset.intersects: length mismatch";
  let nwords = word_count a in
  let rec scan k =
    k < nwords
    && (not (Int64.equal (Int64.logand (get_word a k) (get_word b k)) 0L)
        || scan (k + 1))
  in
  scan 0

let to_string t = String.init t.bits (fun i -> if get t i then '1' else '0')

let pp ppf t = Format.pp_print_string ppf (to_string t)
