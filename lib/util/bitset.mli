(** Fixed-size bitsets backed by [Bytes], scanned 64 bits at a time.

    This is the data structure behind the per-node slot bitmaps of the
    isomalloc slot layer (paper, §4.2): a 3.5 GB iso-address area divided
    into 64 KB slots gives 57 344 bits = 7 168 bytes per node. The hot
    scans ([first_set_from], [find_run], [count], [intersects]) operate on
    whole little-endian words with popcount / trailing-zero-count tricks;
    the virtual-time charge accounting (per logical byte) is unchanged. *)

type t

(** [create n] is a bitset of [n] bits, all cleared. *)
val create : int -> t

(** Number of bits. *)
val length : t -> int

(** Logical size in bytes, [(length + 7) / 8] (what travels on the wire
    during a negotiation gather/scatter, and what bitmap scans are charged
    on). The physical store may be padded to a whole number of words. *)
val byte_size : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

(** Number of set bits. *)
val count : t -> int

(** [first_set t] is the lowest set bit index, or [None]. *)
val first_set : t -> int option

(** [first_set_from t i] is the lowest set bit index [>= i], or [None]. *)
val first_set_from : t -> int -> int option

(** [find_run t n] is the start of the lowest run of [n] consecutive set
    bits, or [None]. First-fit, as in the paper's multi-slot search. *)
val find_run : t -> int -> int option

(** [set_range t i n] sets bits [i .. i+n-1]; [clear_range] clears them. *)
val set_range : t -> int -> int -> unit

val clear_range : t -> int -> int -> unit

(** [or_into ~into src] computes [into := into lor src] (the global OR of
    step 2c of the negotiation protocol). Lengths must match. *)
val or_into : into:t -> t -> unit

val copy : t -> t

(** [equal a b] is structural equality (same length, same bits). *)
val equal : t -> t -> bool

(** [iter_set f t] applies [f] to each set bit index in increasing order.
    The iteration reads one word at a time: mutations [f] makes to [t]
    within the word currently being visited are not observed. *)
val iter_set : (int -> unit) -> t -> unit

(** [intersects a b] is [true] iff some bit is set in both. Used to check
    the iso-address invariant that no slot is owned by two nodes. *)
val intersects : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
