(** Single-owner tripwire for domain-confined mutable structures.

    The parallel scheduler keeps structures like delta caches and
    reliable endpoints confined to the coordinator domain. A guard
    makes the confinement executable: the first domain to {!check}
    claims ownership; a {!check} from any other domain raises
    [Failure] immediately instead of letting a data race corrupt the
    structure silently. *)

type t

val create : name:string -> t

(** Claim on first touch, verify on every later touch.
    @raise Failure if called from a domain other than the owner. *)
val check : t -> unit

(** Release ownership so another domain may claim it — the explicit
    handoff point at a superstep barrier. *)
val release : t -> unit

(** Current owning domain id, if claimed. *)
val owner : t -> int option
