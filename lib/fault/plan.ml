module Prng = Pm2_util.Prng

type partition = { pa : int; pb : int; from_t : float; until_t : float }

type kill = { victim : int; at : float; restart : float option }

type spec = {
  loss : float;
  dup : float;
  corrupt : float;
  delay : float;
  reorder : float;
  partitions : partition list;
  kills : kill list;
  crashes : kill list;
}

let default_spec =
  {
    loss = 0.;
    dup = 0.;
    corrupt = 0.;
    delay = 0.;
    reorder = 0.;
    partitions = [];
    kills = [];
    crashes = [];
  }

(* A [kill=N@T-T] window is degenerate: the interface restarts at the kill
   instant, so the node never actually goes dark. Such windows parse (the
   heartbeat tests use them as no-op markers) but must not count as an
   outage anywhere below. *)
let window_nonempty k =
  match k.restart with Some r -> r > k.at | None -> true

(* [%g]-style printing without trailing zeros, so the canonical form of a
   parsed spec parses back to itself. *)
let fstr v =
  let s = Printf.sprintf "%.12g" v in
  s

let spec_to_string s =
  let items = ref [] in
  let add fmt = Printf.ksprintf (fun x -> items := x :: !items) fmt in
  List.iter
    (fun c ->
      match c.restart with
      | None -> add "crash=%d@%s" c.victim (fstr c.at)
      | Some r -> add "crash=%d@%s-%s" c.victim (fstr c.at) (fstr r))
    (List.rev s.crashes);
  List.iter
    (fun k ->
      match k.restart with
      | None -> add "kill=%d@%s" k.victim (fstr k.at)
      | Some r -> add "kill=%d@%s-%s" k.victim (fstr k.at) (fstr r))
    (List.rev s.kills);
  List.iter
    (fun p -> add "part=%d-%d@%s-%s" p.pa p.pb (fstr p.from_t) (fstr p.until_t))
    (List.rev s.partitions);
  if s.reorder > 0. then add "reorder=%s" (fstr s.reorder);
  if s.delay > 0. then add "delay=%s" (fstr s.delay);
  if s.corrupt > 0. then add "corrupt=%s" (fstr s.corrupt);
  if s.dup > 0. then add "dup=%s" (fstr s.dup);
  if s.loss > 0. then add "loss=%s" (fstr s.loss);
  String.concat "," !items

let parse_prob key v =
  match float_of_string_opt v with
  | Some p when p >= 0. && p <= 1. -> Ok p
  | Some _ -> Error (Printf.sprintf "%s: probability must be in 0..1, got %s" key v)
  | None -> Error (Printf.sprintf "%s: not a number: %s" key v)

let parse_time key v =
  match float_of_string_opt v with
  | Some d when d >= 0. -> Ok d
  | Some _ -> Error (Printf.sprintf "%s: time must be >= 0, got %s" key v)
  | None -> Error (Printf.sprintf "%s: not a number: %s" key v)

let parse_node key v =
  match int_of_string_opt v with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s: not a node id: %s" key v)

let split2 sep s =
  match String.index_opt s sep with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let ( let* ) = Result.bind

(* [kill] accepts a degenerate T-T window (restart at the kill instant, a
   no-op outage); [crash] destroys state, so its restart must come strictly
   after the crash. *)
let parse_outage key ~allow_empty v =
  match split2 '@' v with
  | None -> Error (Printf.sprintf "%s: expected N@T or N@T0-T1, got %s" key v)
  | Some (node, times) -> (
      let* victim = parse_node key node in
      match split2 '-' times with
      | None ->
          let* at = parse_time key times in
          Ok { victim; at; restart = None }
      | Some (t0, t1) ->
          let* at = parse_time key t0 in
          let* r = parse_time key t1 in
          if r < at || ((not allow_empty) && r = at) then
            Error
              (Printf.sprintf "%s: restart time must follow the %s time" key key)
          else Ok { victim; at; restart = Some r })

let parse_kill v = parse_outage "kill" ~allow_empty:true v
let parse_crash v = parse_outage "crash" ~allow_empty:false v

let parse_part v =
  match split2 '@' v with
  | None -> Error (Printf.sprintf "part: expected A-B@T0-T1, got %s" v)
  | Some (link, times) -> (
      match (split2 '-' link, split2 '-' times) with
      | Some (a, b), Some (t0, t1) ->
          let* pa = parse_node "part" a in
          let* pb = parse_node "part" b in
          let* from_t = parse_time "part" t0 in
          let* until_t = parse_time "part" t1 in
          if until_t <= from_t then Error "part: window must be non-empty"
          else Ok { pa; pb; from_t; until_t }
      | _ -> Error (Printf.sprintf "part: expected A-B@T0-T1, got %s" v))

let spec_of_string str =
  let str = String.trim str in
  if str = "" then Ok default_spec
  else
    let items = String.split_on_char ',' str in
    List.fold_left
      (fun acc item ->
        let* s = acc in
        match split2 '=' (String.trim item) with
        | None -> Error (Printf.sprintf "expected key=value, got %s" item)
        | Some (key, v) -> (
            match key with
            | "loss" ->
                let* p = parse_prob key v in
                Ok { s with loss = p }
            | "dup" ->
                let* p = parse_prob key v in
                Ok { s with dup = p }
            | "corrupt" ->
                let* p = parse_prob key v in
                Ok { s with corrupt = p }
            | "reorder" ->
                let* p = parse_prob key v in
                Ok { s with reorder = p }
            | "delay" ->
                let* d = parse_time key v in
                Ok { s with delay = d }
            | "kill" ->
                let* k = parse_kill v in
                Ok { s with kills = s.kills @ [ k ] }
            | "crash" ->
                let* c = parse_crash v in
                Ok { s with crashes = s.crashes @ [ c ] }
            | "part" ->
                let* p = parse_part v in
                Ok { s with partitions = s.partitions @ [ p ] }
            | _ ->
                Error
                  (Printf.sprintf
                     "unknown fault key %s (expected \
                      loss/dup/corrupt/reorder/delay/part/kill/crash)"
                     key)))
      (Ok default_spec) items

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable reordered : int;
}

type t = {
  live : bool;
  mutable sp : spec;
  sd : int;
  prng : Prng.t;
  st : stats;
}

let fresh_stats () = { dropped = 0; duplicated = 0; corrupted = 0; reordered = 0 }

let none =
  {
    live = false;
    sp = default_spec;
    sd = 0;
    prng = Prng.create ~seed:0;
    st = fresh_stats ();
  }

let create ?(seed = 42) sp =
  { live = true; sp; sd = seed; prng = Prng.create ~seed; st = fresh_stats () }

let enabled t = t.live

let spec t = t.sp

(* Runtime re-arming for the service tier: an enabled plan swaps its spec
   in place (the random stream and the statistics continue), so a resident
   cluster can have faults injected mid-run. The shared disabled plan
   [none] is immutable — enabling faults requires a [create]d plan because
   the hardened protocols are selected at cluster creation. *)
let set_spec t sp =
  if not t.live then invalid_arg "Plan.set_spec: plan is disabled";
  t.sp <- sp

let seed t = t.sd

let stats t = t.st

let note_drop t = t.st.dropped <- t.st.dropped + 1

let note_duplicate t = t.st.duplicated <- t.st.duplicated + 1

let note_corrupt t = t.st.corrupted <- t.st.corrupted + 1

let note_reorder t = t.st.reordered <- t.st.reordered + 1

let summary t =
  Printf.sprintf "seed=%d dropped=%d duplicated=%d corrupted=%d reordered=%d"
    t.sd t.st.dropped t.st.duplicated t.st.corrupted t.st.reordered

(* Alive under one outage window: not this node, before the window, inside
   an empty window, or at/after the restart. *)
let outage_spares ~node ~now k =
  k.victim <> node || now < k.at || (not (window_nonempty k))
  || match k.restart with Some r -> now >= r | None -> false

let node_alive t ~node ~now =
  (not t.live)
  || List.for_all (outage_spares ~node ~now) t.sp.kills
     && List.for_all (outage_spares ~node ~now) t.sp.crashes

let node_crashed t ~node ~now =
  t.live && not (List.for_all (outage_spares ~node ~now) t.sp.crashes)

let killed_during t ~node ~from_ ~until =
  if not t.live then None
  else if not (node_alive t ~node ~now:from_) then Some from_
  else
    List.fold_left
      (fun acc k ->
        if
          k.victim = node && window_nonempty k && k.at >= from_ && k.at < until
        then match acc with Some a when a <= k.at -> acc | _ -> Some k.at
        else acc)
      None
      (t.sp.kills @ t.sp.crashes)

let partitioned t ~now ~src ~dst =
  List.exists
    (fun p ->
      ((p.pa = src && p.pb = dst) || (p.pa = dst && p.pb = src))
      && now >= p.from_t && now < p.until_t)
    t.sp.partitions

type drop_reason = Loss | Partitioned | Node_down of int

type delivery = { extra_delay : float; corrupted : bool }

type routed = Deliver of delivery list | Dropped of drop_reason

(* Mean of the "large" delay a reordered message suffers; a few typical
   message flight times, enough to overtake later traffic. *)
let reorder_mean = 250.

let route t ~now ~src ~dst =
  if not (node_alive t ~node:src ~now) then Dropped (Node_down src)
  else if not (node_alive t ~node:dst ~now) then Dropped (Node_down dst)
  else if partitioned t ~now ~src ~dst then Dropped Partitioned
  else if t.sp.loss > 0. && Prng.float t.prng < t.sp.loss then Dropped Loss
  else
    let copies = if t.sp.dup > 0. && Prng.float t.prng < t.sp.dup then 2 else 1 in
    let copy () =
      let jitter =
        if t.sp.delay > 0. then Prng.exponential t.prng ~mean:t.sp.delay else 0.
      in
      let extra_delay =
        if t.sp.reorder > 0. && Prng.float t.prng < t.sp.reorder then (
          note_reorder t;
          jitter +. Prng.exponential t.prng ~mean:reorder_mean)
        else jitter
      in
      let corrupted = t.sp.corrupt > 0. && Prng.float t.prng < t.sp.corrupt in
      { extra_delay; corrupted }
    in
    Deliver (List.init copies (fun _ -> copy ()))

let corrupt_copy t payload =
  let b = Bytes.copy payload in
  let len = Bytes.length b in
  if len > 0 then begin
    let pos = Prng.int t.prng len in
    let mask = 1 + Prng.int t.prng 255 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask))
  end;
  b
