(** A seeded, deterministic fault-injection plan.

    The plan is the single source of truth for every injected failure:
    per-message loss, duplication, reordering and delay jitter, payload
    corruption, transient link partitions, and node kill/restart
    schedules. It is consulted by {!Pm2_net.Network.send} behind one
    enabled-branch guard (same discipline as {!Pm2_obs.Collector.null}):
    with {!none} — the default everywhere — no code path changes and no
    random draw is made, so fault-free runs are byte-identical to a build
    without the subsystem.

    Determinism: decisions are drawn from a private splitmix64 stream
    seeded at {!create}. The simulator's event engine is itself
    deterministic, so the same seed and the same spec reproduce the same
    faults, the same retransmissions and the same trace, event for
    event. *)

(** {1 Fault specification} *)

type partition = {
  pa : int;
  pb : int; (* the two ends of the severed link (both directions) *)
  from_t : float;
  until_t : float; (* virtual-time window, µs *)
}

type kill = {
  victim : int;
  at : float; (* virtual time of the kill, µs *)
  restart : float option; (* virtual time of the restart, if any *)
}

type spec = {
  loss : float; (* per-message drop probability, 0..1 *)
  dup : float; (* per-message duplication probability, 0..1 *)
  corrupt : float; (* per-copy payload-corruption probability, 0..1 *)
  delay : float; (* mean extra delivery jitter, µs (exponential) *)
  reorder : float; (* probability of a large extra delay, 0..1 *)
  partitions : partition list;
  kills : kill list;
  crashes : kill list;
      (* full crash-restart windows: unlike [kills] (interface-only), a
         crash destroys the node's in-memory state — see
         {!Pm2_core.Cluster} for the recovery machinery *)
}

(** All probabilities zero, no partitions, no kills, no crashes. *)
val default_spec : spec

(** Canonical rendering of the grammar below; [""] for {!default_spec}. *)
val spec_to_string : spec -> string

(** Parses the [--faults] spec grammar:

    {v
SPEC  := ITEM ("," ITEM)*  |  ""
ITEM  := loss=P | dup=P | corrupt=P | reorder=P   (P a float in 0..1)
       | delay=US                                  (mean jitter, µs)
       | part=A-B\@T0-T1      (link A<->B severed during [T0,T1))
       | kill=N\@T            (node N's interface dies at T, forever)
       | kill=N\@T0-T1        (dies at T0, restarts at T1; T1 = T0 is a
                               degenerate no-op window)
       | crash=N\@T           (node N crashes at T: full state loss)
       | crash=N\@T0-T1       (crashes at T0, rejoins empty at T1 > T0)
    v}

    The empty string is a valid spec: it enables the failure-hardened
    protocols (two-phase migration, reliable delivery, negotiation
    leases) without injecting any fault. *)
val spec_of_string : string -> (spec, string) result

(** {1 Plans} *)

type t

(** The disabled plan: {!enabled} is [false] and nothing is ever
    consulted. This is the default of every [?faults] argument. *)
val none : t

(** [create ?seed spec] is an enabled plan drawing from a fresh splitmix64
    stream. [seed] defaults to 42. *)
val create : ?seed:int -> spec -> t

val enabled : t -> bool
val spec : t -> spec

(** [set_spec t sp] swaps the spec of an {e enabled} plan in place — the
    runtime fault-injection path of the service tier ([inject_faults]
    over the wire). The plan's random stream and statistics continue
    across the swap, so a given seed still reproduces a given interleaved
    schedule. Messages already routed are unaffected.
    @raise Invalid_argument on a disabled plan (notably {!none}): the
    hardened protocols are selected at cluster creation, so faults can
    only be injected into a cluster armed with a [create]d plan. *)
val set_spec : t -> spec -> unit

val seed : t -> int

(** {1 Node life cycle} *)

(** [node_alive t ~node ~now] is [false] while [node] is down per the kill
    or crash schedule. For a [kill], local computation is unaffected: the
    fault model is fail-stop of the interconnect interface. For a [crash],
    the node's in-memory state is destroyed at the crash instant and the
    node rejoins empty at the restart (see DESIGN §14). Degenerate
    [kill=N\@T-T] windows never count as an outage. *)
val node_alive : t -> node:int -> now:float -> bool

(** [node_crashed t ~node ~now] is [true] while [node] is inside a crash
    window: state destroyed and not yet restarted. *)
val node_crashed : t -> node:int -> now:float -> bool

(** [killed_during t ~node ~from_ ~until] is the earliest instant in
    [[from_, until)] at which [node] is dead (killed or crashed), if any —
    the test a negotiation uses to decide whether its requester survives
    the critical section. Zero-length windows are skipped. *)
val killed_during : t -> node:int -> from_:float -> until:float -> float option

(** {1 Per-message routing} *)

type drop_reason =
  | Loss
  | Partitioned
  | Node_down of int

type delivery = {
  extra_delay : float; (* added to the modelled transfer time *)
  corrupted : bool; (* deliver a mutated copy *)
}

type routed =
  | Deliver of delivery list (* one entry per copy; head is the original *)
  | Dropped of drop_reason

(** [route t ~now ~src ~dst] draws the fate of one message. Exactly the
    probabilities with a non-zero setting consume draws, in a fixed
    order, so decisions are reproducible from the seed. *)
val route : t -> now:float -> src:int -> dst:int -> routed

(** [corrupt_copy t payload] is a copy of [payload] with one byte
    flipped (position and mask drawn from the plan's stream). *)
val corrupt_copy : t -> Bytes.t -> Bytes.t

(** {1 Statistics} *)

type stats = {
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable reordered : int;
}

val stats : t -> stats

(** [note_drop] / …: the network layer records what it actually injected
    so the CLI can print a summary line. *)
val note_drop : t -> unit

val note_duplicate : t -> unit
val note_corrupt : t -> unit
val note_reorder : t -> unit

(** One-line summary for reports, e.g.
    ["seed=7 dropped=12 duplicated=3 corrupted=0 reordered=5"]. *)
val summary : t -> string
