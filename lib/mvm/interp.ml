module As = Pm2_vmem.Address_space

type context = {
  regs : int array;
  mutable pc : int;
  mutable sp : Pm2_vmem.Layout.addr;
  mutable fp : Pm2_vmem.Layout.addr;
}

type fault =
  | Segv of Pm2_vmem.Layout.addr
  | Wild_pc of int
  | Division_by_zero

type outcome =
  | Running
  | Syscall of Isa.syscall
  | Halted
  | Fault of fault

let make_context ~entry ~stack_top =
  { regs = Array.make Isa.num_regs 0; pc = entry; sp = stack_top; fp = stack_top }

let copy_context c = { c with regs = Array.copy c.regs }

let pp_fault ppf = function
  | Segv a -> Format.fprintf ppf "Segmentation fault (address 0x%x)" a
  | Wild_pc pc -> Format.fprintf ppf "Illegal program counter %d" pc
  | Division_by_zero -> Format.fprintf ppf "Division by zero"

let step program ctx space =
  if ctx.pc < 0 || ctx.pc >= Program.code_size program then Fault (Wild_pc ctx.pc)
  else begin
    let ipc = ctx.pc in
    let i = Program.instr program ipc in
    ctx.pc <- ipc + 1;
    let r = ctx.regs in
    try
      match i with
      | Isa.Imm (rd, v) ->
        r.(rd) <- v;
        Running
      | Mov (rd, rs) ->
        r.(rd) <- r.(rs);
        Running
      | Add (rd, a, b) ->
        r.(rd) <- r.(a) + r.(b);
        Running
      | Sub (rd, a, b) ->
        r.(rd) <- r.(a) - r.(b);
        Running
      | Mul (rd, a, b) ->
        r.(rd) <- r.(a) * r.(b);
        Running
      | Div (rd, a, b) ->
        if r.(b) = 0 then begin
          ctx.pc <- ipc;
          Fault Division_by_zero
        end
        else begin
          r.(rd) <- r.(a) / r.(b);
          Running
        end
      | Mod (rd, a, b) ->
        if r.(b) = 0 then begin
          ctx.pc <- ipc;
          Fault Division_by_zero
        end
        else begin
          r.(rd) <- r.(a) mod r.(b);
          Running
        end
      | Addi (rd, rs, v) ->
        r.(rd) <- r.(rs) + v;
        Running
      | Load (rd, rs, off) ->
        r.(rd) <- As.load_word space (r.(rs) + off);
        Running
      | Store (rs, rbase, off) ->
        As.store_word space (r.(rbase) + off) r.(rs);
        Running
      | Push rs ->
        ctx.sp <- ctx.sp - 8;
        As.store_word space ctx.sp r.(rs);
        Running
      | Pop rd ->
        r.(rd) <- As.load_word space ctx.sp;
        ctx.sp <- ctx.sp + 8;
        Running
      | Sp rd ->
        r.(rd) <- ctx.sp;
        Running
      | Fp rd ->
        r.(rd) <- ctx.fp;
        Running
      | Jmp t ->
        ctx.pc <- t;
        Running
      | Beq (a, b, t) ->
        if r.(a) = r.(b) then ctx.pc <- t;
        Running
      | Bne (a, b, t) ->
        if r.(a) <> r.(b) then ctx.pc <- t;
        Running
      | Blt (a, b, t) ->
        if r.(a) < r.(b) then ctx.pc <- t;
        Running
      | Bge (a, b, t) ->
        if r.(a) >= r.(b) then ctx.pc <- t;
        Running
      | Call t ->
        ctx.sp <- ctx.sp - 8;
        As.store_word space ctx.sp ctx.pc;
        ctx.pc <- t;
        Running
      | Ret ->
        let ra = As.load_word space ctx.sp in
        ctx.sp <- ctx.sp + 8;
        ctx.pc <- ra;
        Running
      | Enter n ->
        (* push fp; fp <- sp; sp <- sp - n: the frame chain is a list of
           absolute addresses threaded through the stack. *)
        ctx.sp <- ctx.sp - 8;
        As.store_word space ctx.sp ctx.fp;
        ctx.fp <- ctx.sp;
        ctx.sp <- ctx.sp - n;
        Running
      | Leave ->
        ctx.sp <- ctx.fp;
        ctx.fp <- As.load_word space ctx.sp;
        ctx.sp <- ctx.sp + 8;
        Running
      | Sys sc -> Syscall sc
      | Halt -> Halted
      | Nop -> Running
    with As.Segfault { addr; _ } ->
      (* Restore the faulting instruction's pc: [ctx.pc] was already
         advanced (and [Call]/[Jmp] never reach their pc assignment when
         the memory access faults first), so without this the report
         points one past — or nowhere near — the faulting instruction.
         Partial [sp]/[fp] mutations before the faulting access persist,
         as on a real machine. *)
      ctx.pc <- ipc;
      Fault (Segv addr)
  end
