module Layout = Pm2_vmem.Layout
module As = Pm2_vmem.Address_space

type t = {
  code : Isa.instr array;
  data : Bytes.t;
  entries : (string * int) list;
  mutable decoded_ : Decode.t option;
}

let make ~code ~data ~entries =
  (* Pre-decode at load time: the boxed AST is lowered once, here, and
     every engine (and every cluster sharing this image) runs from the
     same flat form. Decoding also validates register operands up front,
     so a malformed image fails at assembly, not mid-run. *)
  let t = { code; data; entries; decoded_ = None } in
  t.decoded_ <- Some (Decode.of_code code);
  t

let decoded t =
  match t.decoded_ with
  | Some d -> d
  | None ->
    (* Images built by hand as record literals (tests) decode lazily. *)
    let d = Decode.of_code t.code in
    t.decoded_ <- Some d;
    d

let entry t name =
  match List.assoc_opt name t.entries with
  | Some pc -> pc
  | None -> raise Not_found

let instr t pc =
  if pc < 0 || pc >= Array.length t.code then
    invalid_arg (Printf.sprintf "Program.instr: wild pc %d" pc);
  t.code.(pc)

let code_size t = Array.length t.code

let load_data t space =
  let size = Layout.page_align_up (max Layout.page_size (Bytes.length t.data)) in
  As.mmap space ~addr:Layout.data_base ~size;
  As.store_bytes space Layout.data_base t.data
