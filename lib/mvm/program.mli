(** An assembled SPMD program image.

    The same image is loaded on every node at the same addresses (paper,
    §3.1, rule 1): code at {!Pm2_vmem.Layout.code_base}, static data at
    {!Pm2_vmem.Layout.data_base}. Program counters are code {e indices}
    (one instruction = one code word), so they are trivially
    position-identical across nodes. *)

type t = {
  code : Isa.instr array;
  data : Bytes.t; (* static-data image, loaded at [Layout.data_base] *)
  entries : (string * int) list; (* named entry points -> pc *)
  mutable decoded_ : Decode.t option;
      (* the pre-decoded form, filled by [make] (or lazily on first
         [decoded] for hand-built record literals); use [decoded] *)
}

(** [make ~code ~data ~entries] builds an image and pre-decodes it —
    the boxed AST is lowered to the flat {!Decode.t} form once, at load
    time, which also validates every register operand up front.
    @raise Invalid_argument on a register operand out of range. *)
val make :
  code:Isa.instr array -> data:Bytes.t -> entries:(string * int) list -> t

val decoded : t -> Decode.t
(** The pre-decoded form (memoized; decodes on first use for images
    built as bare record literals). *)

val entry : t -> string -> int
(** Program counter of a named entry point. @raise Not_found. *)

val instr : t -> int -> Isa.instr
(** @raise Invalid_argument on a wild pc (jump outside the code). *)

val code_size : t -> int

(** [load_data t space] maps the data segment into [space] and copies the
    image. Called once per node at cluster start-up. *)
val load_data : t -> Pm2_vmem.Address_space.t -> unit
