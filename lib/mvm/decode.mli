(** Pre-decoded program form.

    [of_code] lowers the boxed {!Isa.instr} array into a flat int array —
    one fixed-width group of {!stride} ints per instruction (opcode, then
    up to three operand fields) — produced once at program-load time and
    shared by every execution engine. See {!Engine} for the machines that
    run it; {!Interp.step} remains the reference oracle over the boxed
    form. *)

type t = private {
  code : int array; (* stride-wide groups: op, a, b, c per pc *)
  len : int; (* instruction count *)
}

val stride : int
(** Ints per decoded instruction (4): opcode + three operand fields. The
    fields of instruction [pc] live at [code.(pc*stride) ..
    code.(pc*stride+3)]. *)

(** [of_code code] decodes a whole program. Every register operand is
    validated against {!Isa.num_regs} here, once — this is what makes the
    engines' unchecked register accesses sound. Branch targets are not
    validated (a wild target is the guest's [Wild_pc] fault, not a
    malformed program).
    @raise Invalid_argument on a register operand outside [0, num_regs). *)
val of_code : Isa.instr array -> t

val op : t -> int -> int
(** Opcode of the instruction at [pc] (bounds-checked; for block
    scanning and tests, not the hot loop). *)

(** {1 Opcodes} — {!Isa.instr} constructor order, dense from 0. *)

val op_imm : int
val op_mov : int
val op_add : int
val op_sub : int
val op_mul : int
val op_div : int
val op_mod : int
val op_addi : int
val op_load : int
val op_store : int
val op_push : int
val op_pop : int
val op_sp : int
val op_fp : int
val op_jmp : int
val op_beq : int
val op_bne : int
val op_blt : int
val op_bge : int
val op_call : int
val op_ret : int
val op_enter : int
val op_leave : int
val op_sys : int
val op_halt : int
val op_nop : int

val is_terminator : int -> bool
(** Instructions that unconditionally end a basic block (all control
    transfers, [Sys], [Halt]). *)

val int_of_syscall : Isa.syscall -> int
(** Dense numbering of syscalls, {!Isa.syscall} constructor order. *)

val syscall_of_int : int -> Isa.syscall
(** Inverse of {!int_of_syscall}. @raise Invalid_argument out of range. *)
