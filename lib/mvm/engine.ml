(* Fast MVM execution engines over the pre-decoded form.

   Three machines behind one [run] surface, all bit-exact against
   {!Interp.step} (the reference oracle, which [Step] literally loops):

   - [Step]     — per-instruction [Interp.step], for differential tests
                  and as the known-good baseline.
   - [Threaded] — run-until-event over {!Decode.t}: a single while loop
                  fetching stride-wide int groups and dispatching on a
                  dense int match (a jump table once compiled), with a
                  one-entry page cache inlined into the guest load/store
                  path. Exits only on syscall/halt/fault/fuel-exhaustion.
   - [Blocks]   — basic-block closure compilation: decoded code is split
                  into blocks at load time and each block becomes one
                  chained OCaml closure (per-instruction closures fused
                  nose to tail, branch targets resolved to pcs), cached
                  per entry pc, so a hot loop is a handful of closure
                  calls per iteration.

   Exactness contract (what "bit-exact" means here):
   - fuel is an exact instruction budget. An instruction executes only
     while fuel > 0; every Running-outcome instruction consumes 1 fuel
     and counts 1 step; Sys/Halt/fault instructions consume none and
     count none (the scheduler charges syscalls separately) — precisely
     the accounting of the historic per-[step] scheduler loop, so
     preemption points, requeues and virtual time are byte-identical.
   - the fuel check precedes the wild-pc check, as in the old loop: a
     thread out of budget requeues first and faults next quantum.
   - faults restore the faulting instruction's pc and preserve partial
     sp/fp mutations (a [Push] whose store faults keeps the decremented
     sp), exactly like the fixed {!Interp.step}.
   - [st] (and with it the page cache) is built fresh per [run] call:
     no munmap/scrub/epoch-advance can happen *within* a run (only guest
     instructions execute; syscalls end the run), so cached page buffers
     are structurally valid for the whole slice, and migration /
     checkpoint / restore paths between runs can never observe or keep a
     stale page handle. Write-cache hits skip the dirty re-mark because
     the miss already stamped the page with the current epoch and
     epochs cannot advance mid-run. *)

module As = Pm2_vmem.Address_space
module Layout = Pm2_vmem.Layout
module A = Array

type kind =
  | Step
  | Threaded
  | Blocks

let kind_to_string = function
  | Step -> "step"
  | Threaded -> "threaded"
  | Blocks -> "blocks"

let kind_of_string = function
  | "step" -> Some Step
  | "threaded" -> Some Threaded
  | "blocks" -> Some Blocks
  | _ -> None

(* Division-by-zero (and any future non-memory fault) unwinds block
   closures through this; segfaults unwind as [As.Segfault]. *)
exception Guest_fault of Interp.fault

(* Per-[run] machine state. [regs] aliases the thread context's register
   file (mutated in place); [sp]/[fp] are committed back at exit. *)
type st = {
  regs : int array;
  mutable sp : int;
  mutable fp : int;
  space : As.t;
  mutable steps : int; (* completed Running-outcome instructions *)
  mutable fpc : int; (* block engine: pc of the risky instr in flight *)
  mutable fsteps : int; (* block engine: [steps] value to restore on fault *)
  mutable rp : int; (* read-cached page number, -1 = none *)
  mutable rb : Bytes.t;
  mutable wp : int; (* write-cached page number, -1 = none *)
  mutable wb : Bytes.t;
}

type bterm =
  | Bt_cont (* b_exec returns the next pc *)
  | Bt_sys of Isa.syscall * int (* resume pc (after the Sys) *)
  | Bt_halt of int (* pc after the Halt *)

type block = {
  b_total : int; (* instructions in the block, terminator included *)
  b_regulars : int; (* of them, Running-outcome ones (fuel consumers) *)
  b_term : bterm;
  b_exec : st -> int; (* next pc for Bt_cont; ignored otherwise *)
}

(* Sentinel for not-yet-compiled block slots; tested by physical
   equality, never executed. *)
let uncompiled : block =
  { b_total = 0; b_regulars = 0; b_term = Bt_cont; b_exec = (fun _ -> 0) }

type t = {
  kind : kind;
  program : Program.t;
  d : Decode.t;
  blocks : block array;
      (* entry pc -> compiled block ([Blocks]); [uncompiled] sentinel
         (physical equality) marks not-yet-compiled entries — cheaper to
         test on the hot path than an option deref *)
}

(* The threaded loop and the block closures match on int literals; pin
   them to the named constants once, at module init. *)
let () =
  assert
    (Decode.stride = 4 && Decode.op_imm = 0 && Decode.op_mov = 1
   && Decode.op_add = 2 && Decode.op_sub = 3 && Decode.op_mul = 4
   && Decode.op_div = 5 && Decode.op_mod = 6 && Decode.op_addi = 7
   && Decode.op_load = 8 && Decode.op_store = 9 && Decode.op_push = 10
   && Decode.op_pop = 11 && Decode.op_sp = 12 && Decode.op_fp = 13
   && Decode.op_jmp = 14 && Decode.op_beq = 15 && Decode.op_bne = 16
   && Decode.op_blt = 17 && Decode.op_bge = 18 && Decode.op_call = 19
   && Decode.op_ret = 20 && Decode.op_enter = 21 && Decode.op_leave = 22
   && Decode.op_sys = 23 && Decode.op_halt = 24 && Decode.op_nop = 25)

(* ===== inlined guest word access (the fast path) ===== *)

let page_mask = Layout.page_size - 1

let last_word_off = Layout.page_size - 8

(* Same arithmetic as [As.load_word]/[store_word], with the page lookup
   cached in [st] instead of re-probed per access; words straddling a
   page boundary (off > page_size-8) take the byte-wise slow path. *)
let[@inline] ld st a =
  let off = a land page_mask in
  if off <= last_word_off then begin
    let p = a lsr Layout.page_shift in
    let b =
      if p = st.rp then st.rb
      else begin
        let b = As.page_for_read st.space a in
        st.rp <- p;
        st.rb <- b;
        b
      end
    in
    Int64.to_int (Bytes.get_int64_le b off)
  end
  else As.load_word st.space a

let[@inline] sd st a v =
  let off = a land page_mask in
  if off <= last_word_off then begin
    let p = a lsr Layout.page_shift in
    let b =
      if p = st.wp then st.wb
      else begin
        let b = As.page_for_write st.space a in
        st.wp <- p;
        st.wb <- b;
        b
      end
    in
    Bytes.set_int64_le b off (Int64.of_int v)
  end
  else As.store_word st.space a v

(* ===== layer 2: threaded dispatch, run-until-event ===== *)

(* Execute from [pc] for at most [fuel] Running-outcome instructions.
   Returns the outcome and the final pc; [st.steps] accumulates. Also
   the exact-fuel tail executor for the block engine. *)
let threaded_from (d : Decode.t) (st : st) ~pc ~fuel : Interp.outcome * int =
  let code = d.Decode.code in
  let len = d.Decode.len in
  let r = st.regs in
  let pc = ref pc in
  let fuel = ref fuel in
  let result = ref Interp.Running in
  let running = ref true in
  (try
     while !running do
       if !fuel <= 0 then running := false
       else begin
         let ipc = !pc in
         if ipc < 0 || ipc >= len then begin
           result := Interp.Fault (Interp.Wild_pc ipc);
           running := false
         end
         else begin
           let base = ipc * 4 in
           let op = Array.unsafe_get code base in
           let a = Array.unsafe_get code (base + 1) in
           let b = Array.unsafe_get code (base + 2) in
           let c = Array.unsafe_get code (base + 3) in
           pc := ipc + 1;
           (match op with
            | 0 (* Imm *) -> Array.unsafe_set r a b
            | 1 (* Mov *) -> Array.unsafe_set r a (Array.unsafe_get r b)
            | 2 (* Add *) ->
              Array.unsafe_set r a (Array.unsafe_get r b + Array.unsafe_get r c)
            | 3 (* Sub *) ->
              Array.unsafe_set r a (Array.unsafe_get r b - Array.unsafe_get r c)
            | 4 (* Mul *) ->
              Array.unsafe_set r a (Array.unsafe_get r b * Array.unsafe_get r c)
            | 5 (* Div *) ->
              let dv = Array.unsafe_get r c in
              if dv = 0 then begin
                pc := ipc;
                raise (Guest_fault Interp.Division_by_zero)
              end;
              Array.unsafe_set r a (Array.unsafe_get r b / dv)
            | 6 (* Mod *) ->
              let dv = Array.unsafe_get r c in
              if dv = 0 then begin
                pc := ipc;
                raise (Guest_fault Interp.Division_by_zero)
              end;
              Array.unsafe_set r a (Array.unsafe_get r b mod dv)
            | 7 (* Addi *) -> Array.unsafe_set r a (Array.unsafe_get r b + c)
            | 8 (* Load *) -> Array.unsafe_set r a (ld st (Array.unsafe_get r b + c))
            | 9 (* Store *) -> sd st (Array.unsafe_get r b + c) (Array.unsafe_get r a)
            | 10 (* Push *) ->
              st.sp <- st.sp - 8;
              sd st st.sp (Array.unsafe_get r a)
            | 11 (* Pop *) ->
              Array.unsafe_set r a (ld st st.sp);
              st.sp <- st.sp + 8
            | 12 (* Sp *) -> Array.unsafe_set r a st.sp
            | 13 (* Fp *) -> Array.unsafe_set r a st.fp
            | 14 (* Jmp *) -> pc := a
            | 15 (* Beq *) ->
              if Array.unsafe_get r a = Array.unsafe_get r b then pc := c
            | 16 (* Bne *) ->
              if Array.unsafe_get r a <> Array.unsafe_get r b then pc := c
            | 17 (* Blt *) ->
              if Array.unsafe_get r a < Array.unsafe_get r b then pc := c
            | 18 (* Bge *) ->
              if Array.unsafe_get r a >= Array.unsafe_get r b then pc := c
            | 19 (* Call *) ->
              (* pc assignment last, like [Interp.step]: a faulting store
                 leaves pc = ipc+1, which the handler rewinds to ipc. *)
              st.sp <- st.sp - 8;
              sd st st.sp (ipc + 1);
              pc := a
            | 20 (* Ret *) ->
              let ra = ld st st.sp in
              st.sp <- st.sp + 8;
              pc := ra
            | 21 (* Enter *) ->
              st.sp <- st.sp - 8;
              sd st st.sp st.fp;
              st.fp <- st.sp;
              st.sp <- st.sp - a
            | 22 (* Leave *) ->
              st.sp <- st.fp;
              st.fp <- ld st st.sp;
              st.sp <- st.sp + 8
            | 23 (* Sys *) ->
              result := Interp.Syscall (Decode.syscall_of_int a);
              running := false
            | 24 (* Halt *) ->
              result := Interp.Halted;
              running := false
            | 25 (* Nop *) -> ()
            | _ -> assert false);
           (* Sys/Halt exits above consume no fuel and count no step —
              the scheduler accounts for the Sys instruction itself. *)
           if !running then begin
             st.steps <- st.steps + 1;
             fuel := !fuel - 1
           end
         end
       end
     done
   with
  | As.Segfault { addr; _ } ->
    (* Every memory-faulting op runs with pc = ipc+1 (pc reassignment is
       the last action of Call/Ret), so rewinding one lands on the
       faulting instruction. The in-flight op was never counted. *)
    pc := !pc - 1;
    result := Interp.Fault (Interp.Segv addr)
  | Guest_fault f -> result := Interp.Fault f);
  (!result, !pc)

(* ===== layer 3: basic-block closure compilation ===== *)

(* Compile the decoded instruction at [ipc] (block-relative index [bi])
   into one closure that performs the op and tail-calls its continuation
   [k] (the rest of the block, already compiled). Continuation-passing
   keeps the per-instruction cost to a single indirect tail call — no
   wrapper closures between instructions. Ops that can fault record the
   restart point (fpc / steps-so-far) first; the block driver uses it to
   report the exact faulting instruction and step count. *)
let compile_instr (d : Decode.t) ~ipc ~bi (k : st -> int) : st -> int =
  let base = ipc * 4 in
  let code = d.Decode.code in
  let a = code.(base + 1) in
  let b = code.(base + 2) in
  let c = code.(base + 3) in
  match code.(base) with
  | 0 (* Imm *) ->
    fun st ->
      Array.unsafe_set st.regs a b;
      k st
  | 1 (* Mov *) ->
    fun st ->
      Array.unsafe_set st.regs a (Array.unsafe_get st.regs b);
      k st
  | 2 (* Add *) ->
    fun st ->
      Array.unsafe_set st.regs a
        (Array.unsafe_get st.regs b + Array.unsafe_get st.regs c);
      k st
  | 3 (* Sub *) ->
    fun st ->
      Array.unsafe_set st.regs a
        (Array.unsafe_get st.regs b - Array.unsafe_get st.regs c);
      k st
  | 4 (* Mul *) ->
    fun st ->
      Array.unsafe_set st.regs a
        (Array.unsafe_get st.regs b * Array.unsafe_get st.regs c);
      k st
  | 5 (* Div *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      let dv = Array.unsafe_get st.regs c in
      if dv = 0 then raise (Guest_fault Interp.Division_by_zero);
      Array.unsafe_set st.regs a (Array.unsafe_get st.regs b / dv);
      k st
  | 6 (* Mod *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      let dv = Array.unsafe_get st.regs c in
      if dv = 0 then raise (Guest_fault Interp.Division_by_zero);
      Array.unsafe_set st.regs a (Array.unsafe_get st.regs b mod dv);
      k st
  | 7 (* Addi *) ->
    fun st ->
      Array.unsafe_set st.regs a (Array.unsafe_get st.regs b + c);
      k st
  | 8 (* Load *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      Array.unsafe_set st.regs a (ld st (Array.unsafe_get st.regs b + c));
      k st
  | 9 (* Store *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      sd st (Array.unsafe_get st.regs b + c) (Array.unsafe_get st.regs a);
      k st
  | 10 (* Push *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      st.sp <- st.sp - 8;
      sd st st.sp (Array.unsafe_get st.regs a);
      k st
  | 11 (* Pop *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      Array.unsafe_set st.regs a (ld st st.sp);
      st.sp <- st.sp + 8;
      k st
  | 12 (* Sp *) ->
    fun st ->
      Array.unsafe_set st.regs a st.sp;
      k st
  | 13 (* Fp *) ->
    fun st ->
      Array.unsafe_set st.regs a st.fp;
      k st
  | 21 (* Enter *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      st.sp <- st.sp - 8;
      sd st st.sp st.fp;
      st.fp <- st.sp;
      st.sp <- st.sp - a;
      k st
  | 22 (* Leave *) ->
    fun st ->
      st.fpc <- ipc;
      st.fsteps <- st.steps + bi;
      st.sp <- st.fp;
      st.fp <- ld st st.sp;
      st.sp <- st.sp + 8;
      k st
  | 25 (* Nop *) -> k
  | _ ->
    (* terminators never appear as block bodies *)
    assert false

(* The six "simple" ALU ops: register-only, never fault, never touch
   sp/fp — fusable into superinstruction closures with no effect on the
   exactness contract (no fpc/fsteps bookkeeping needed). *)
let is_simple op = op = 0 || op = 1 || op = 2 || op = 3 || op = 4 || op = 7

(* One closure executing two adjacent simple ops — halves the indirect
   calls on arithmetic runs. Written-then-read dependences are honoured
   because both ops mutate the same register array in order. *)
let compile_pair code base1 base2 (k : st -> int) : st -> int =
  let op1 = code.(base1) and a1 = code.(base1 + 1)
  and b1 = code.(base1 + 2) and c1 = code.(base1 + 3) in
  let op2 = code.(base2) and a2 = code.(base2 + 1)
  and b2 = code.(base2 + 2) and c2 = code.(base2 + 3) in
  match op1, op2 with
  | 0, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 b2; k st
  | 0, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 0, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 0, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 0, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 0, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 b1; A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | 1, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 b2; k st
  | 1, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 1, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 1, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 1, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 1, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1); A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | 2, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 b2; k st
  | 2, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 2, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 2, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 2, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 2, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | 3, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 b2; k st
  | 3, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 3, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 3, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 3, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 3, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 - A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | 4, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 b2; k st
  | 4, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 4, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 4, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 4, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 4, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 * A.unsafe_get r c1); A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | 7, 0 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 b2; k st
  | 7, 1 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 (A.unsafe_get r b2); k st
  | 7, 2 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 (A.unsafe_get r b2 + A.unsafe_get r c2); k st
  | 7, 3 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 (A.unsafe_get r b2 - A.unsafe_get r c2); k st
  | 7, 4 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 (A.unsafe_get r b2 * A.unsafe_get r c2); k st
  | 7, 7 -> fun st -> let r = st.regs in A.unsafe_set r a1 (A.unsafe_get r b1 + c1); A.unsafe_set r a2 (A.unsafe_get r b2 + c2); k st
  | _ -> assert false

(* Fuse the body instructions of [entry..body_stop) onto [term] (the
   terminator's continuation), innermost first, pairing adjacent simple
   ops greedily from the tail. *)
let fuse (d : Decode.t) ~entry ~body_stop (term : st -> int) : st -> int =
  let code = d.Decode.code in
  let rec build ipc k =
    if ipc < entry then k
    else if
      ipc > entry
      && is_simple code.(ipc * 4)
      && is_simple code.((ipc - 1) * 4)
    then build (ipc - 2) (compile_pair code ((ipc - 1) * 4) (ipc * 4) k)
    else build (ipc - 1) (compile_instr d ~ipc ~bi:(ipc - entry) k)
  in
  build (body_stop - 1) term

let compile (d : Decode.t) entry : block =
  let code = d.Decode.code in
  let len = d.Decode.len in
  let rec scan pc =
    (* exclusive end: first terminator (inclusive) or end of code *)
    if pc >= len then pc
    else if Decode.is_terminator code.(pc * 4) then pc + 1
    else scan (pc + 1)
  in
  let stop = scan entry in
  let total = stop - entry in
  let tpc = stop - 1 in
  let has_term = Decode.is_terminator code.((stop - 1) * 4) in
  let body_stop = if has_term then stop - 1 else stop in
  let fuse term = fuse d ~entry ~body_stop term in
  if not has_term then
    (* Code runs off the end: every instruction is a regular body and
       control falls through to pc = len, which the driver reports as
       the wild-pc fault (or a requeue first, if fuel ran out). *)
    { b_total = total; b_regulars = total; b_term = Bt_cont;
      b_exec = fuse (fun _ -> len) }
  else begin
    let base = tpc * 4 in
    let a = code.(base + 1) in
    let b = code.(base + 2) in
    let c = code.(base + 3) in
    let bi = tpc - entry in
    match code.(base) with
    | 14 (* Jmp *) ->
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec = fuse (fun _ -> a) }
    | 15 (* Beq *) ->
      let fall = tpc + 1 in
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              if Array.unsafe_get st.regs a = Array.unsafe_get st.regs b then c
              else fall) }
    | 16 (* Bne *) ->
      let fall = tpc + 1 in
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              if Array.unsafe_get st.regs a <> Array.unsafe_get st.regs b then c
              else fall) }
    | 17 (* Blt *) ->
      let fall = tpc + 1 in
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              if Array.unsafe_get st.regs a < Array.unsafe_get st.regs b then c
              else fall) }
    | 18 (* Bge *) ->
      let fall = tpc + 1 in
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              if Array.unsafe_get st.regs a >= Array.unsafe_get st.regs b then c
              else fall) }
    | 19 (* Call *) ->
      let ra = tpc + 1 in
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              st.fpc <- tpc;
              st.fsteps <- st.steps + bi;
              st.sp <- st.sp - 8;
              sd st st.sp ra;
              a) }
    | 20 (* Ret *) ->
      { b_total = total; b_regulars = total; b_term = Bt_cont;
        b_exec =
          fuse (fun st ->
              st.fpc <- tpc;
              st.fsteps <- st.steps + bi;
              let ra = ld st st.sp in
              st.sp <- st.sp + 8;
              ra) }
    | 23 (* Sys *) ->
      { b_total = total; b_regulars = total - 1;
        b_term = Bt_sys (Decode.syscall_of_int a, tpc + 1);
        b_exec = fuse (fun _ -> 0) }
    | 24 (* Halt *) ->
      { b_total = total; b_regulars = total - 1; b_term = Bt_halt (tpc + 1);
        b_exec = fuse (fun _ -> 0) }
    | _ -> assert false
  end

let get_block t pc =
  let b = Array.unsafe_get t.blocks pc in
  if b != uncompiled then b
  else begin
    let b = compile t.d pc in
    t.blocks.(pc) <- b;
    b
  end

(* The block driver. Whole blocks run only when fuel covers them; a
   block bigger than the remaining fuel falls back to the threaded
   stepper for the tail of the slice, which enforces the per-instruction
   budget exactly (fuel >= b_total iff every instruction of the block,
   terminator included, passes the old loop's budget > 0 check). The
   fault handler is installed once per [drive], not per block: until a
   block completes, [st.steps] still holds its start-of-block value, so
   the handler's [fsteps] restore is always correct. The loop is a while
   loop, not recursion — calls under an active trap frame cannot be
   tail-call optimized, so a recursive driver inside [try] would grow
   the host stack by one frame per block executed. *)
let drive t st ~pc ~fuel : Interp.outcome * int =
  let len = t.d.Decode.len in
  let blocks = t.blocks in
  let pc = ref pc in
  let fuel = ref fuel in
  let outcome = ref Interp.Running in
  let running = ref true in
  (try
     while !running do
       let p = !pc in
       if !fuel <= 0 then running := false
       else if p < 0 || p >= len then begin
         outcome := Interp.Fault (Interp.Wild_pc p);
         running := false
       end
       else begin
         let b =
           let b = Array.unsafe_get blocks p in
           if b != uncompiled then b
           else begin
             let b = compile t.d p in
             t.blocks.(p) <- b;
             b
           end
         in
         if b.b_total > !fuel then begin
           let o, p' = threaded_from t.d st ~pc:p ~fuel:!fuel in
           outcome := o;
           pc := p';
           running := false
         end
         else begin
           let next = b.b_exec st in
           st.steps <- st.steps + b.b_regulars;
           match b.b_term with
           | Bt_cont ->
             fuel := !fuel - b.b_regulars;
             pc := next
           | Bt_sys (sc, resume) ->
             outcome := Interp.Syscall sc;
             pc := resume;
             running := false
           | Bt_halt resume ->
             outcome := Interp.Halted;
             pc := resume;
             running := false
         end
       end
     done
   with
  | As.Segfault { addr; _ } ->
    st.steps <- st.fsteps;
    outcome := Interp.Fault (Interp.Segv addr);
    pc := st.fpc
  | Guest_fault f ->
    st.steps <- st.fsteps;
    outcome := Interp.Fault f;
    pc := st.fpc);
  (!outcome, !pc)

(* Eagerly compile the statically known block leaders (named entries,
   branch/call targets, fall-through successors of terminators), so the
   steady state pays no compile checks. Leaders only reachable through
   computed pcs (lea'd labels, spawn entries popped off the stack)
   compile lazily on first execution via [get_block]. *)
let precompile t =
  let code = t.d.Decode.code in
  let len = t.d.Decode.len in
  if len > 0 then begin
    let mark = Array.make len false in
    mark.(0) <- true;
    List.iter
      (fun (_, pc) -> if pc >= 0 && pc < len then mark.(pc) <- true)
      t.program.Program.entries;
    for pc = 0 to len - 1 do
      let op = code.(pc * 4) in
      if Decode.is_terminator op then begin
        if pc + 1 < len then mark.(pc + 1) <- true;
        let tgt =
          if op = Decode.op_jmp || op = Decode.op_call then code.((pc * 4) + 1)
          else if op >= Decode.op_beq && op <= Decode.op_bge then
            code.((pc * 4) + 3)
          else -1
        in
        if tgt >= 0 && tgt < len then mark.(tgt) <- true
      end
    done;
    for pc = 0 to len - 1 do
      if mark.(pc) then ignore (get_block t pc)
    done
  end

let create kind program =
  let d = Program.decoded program in
  let t =
    {
      kind;
      program;
      d;
      blocks =
        (match kind with
         | Blocks -> Array.make (max 1 d.Decode.len) uncompiled
         | _ -> [||]);
    }
  in
  if kind = Blocks then precompile t;
  t

let kind t = t.kind

let run t (ctx : Interp.context) space ~fuel : Interp.outcome * int =
  match t.kind with
  | Step ->
    (* The reference oracle, verbatim: per-instruction [Interp.step]
       with the budget check ahead of each step. *)
    let steps = ref 0 in
    let fuel = ref fuel in
    let result = ref Interp.Running in
    let running = ref true in
    while !running do
      if !fuel <= 0 then running := false
      else
        match Interp.step t.program ctx space with
        | Interp.Running ->
          incr steps;
          decr fuel
        | o ->
          result := o;
          running := false
    done;
    (!result, !steps)
  | Threaded | Blocks ->
    let st =
      {
        regs = ctx.Interp.regs;
        sp = ctx.Interp.sp;
        fp = ctx.Interp.fp;
        space;
        steps = 0;
        fpc = 0;
        fsteps = 0;
        rp = -1;
        rb = Bytes.empty;
        wp = -1;
        wb = Bytes.empty;
      }
    in
    let outcome, pc =
      if t.kind = Threaded then threaded_from t.d st ~pc:ctx.Interp.pc ~fuel
      else drive t st ~pc:ctx.Interp.pc ~fuel
    in
    ctx.Interp.pc <- pc;
    ctx.Interp.sp <- st.sp;
    ctx.Interp.fp <- st.fp;
    (outcome, st.steps)
