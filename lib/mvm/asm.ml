module Vec = Pm2_util.Vec
module Layout = Pm2_vmem.Layout

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12

type t = {
  code : Isa.instr Vec.t;
  labels : (string, int) Hashtbl.t;
  fixups : (int * string) Vec.t; (* instruction index, label it refers to *)
  data : Buffer.t;
  strings : (string, int) Hashtbl.t; (* interned C strings -> address *)
  mutable entries : (string * int) list;
  mutable gensym : int;
}

let create () =
  {
    code = Vec.create ();
    labels = Hashtbl.create 16;
    fixups = Vec.create ();
    data = Buffer.create 256;
    strings = Hashtbl.create 16;
    entries = [];
    gensym = 0;
  }

let here b = Vec.length b.code

let label b name =
  if Hashtbl.mem b.labels name then failwith (Printf.sprintf "Asm: label %s redefined" name);
  Hashtbl.replace b.labels name (here b)

let proc b name body =
  label b name;
  b.entries <- (name, here b) :: b.entries;
  body b

let fresh_label b =
  b.gensym <- b.gensym + 1;
  Printf.sprintf ".L%d" b.gensym

let cstring b s =
  match Hashtbl.find_opt b.strings s with
  | Some addr -> addr
  | None ->
    let addr = Layout.data_base + Buffer.length b.data in
    Buffer.add_string b.data s;
    Buffer.add_char b.data '\000';
    (* keep words 8-aligned for subsequent [words] reservations *)
    while Buffer.length b.data land 7 <> 0 do
      Buffer.add_char b.data '\000'
    done;
    Hashtbl.replace b.strings s addr;
    addr

let words b n =
  let addr = Layout.data_base + Buffer.length b.data in
  Buffer.add_bytes b.data (Bytes.make (8 * n) '\000');
  addr

let emit b i = Vec.push b.code i

let emit_ref b mk name =
  Vec.push b.fixups (here b, name);
  emit b (mk 0)

let imm b rd v = emit b (Isa.Imm (rd, v))
let mov b rd rs = emit b (Isa.Mov (rd, rs))
let add b rd a c = emit b (Isa.Add (rd, a, c))
let sub b rd a c = emit b (Isa.Sub (rd, a, c))
let mul b rd a c = emit b (Isa.Mul (rd, a, c))
let div b rd a c = emit b (Isa.Div (rd, a, c))
let mod_ b rd a c = emit b (Isa.Mod (rd, a, c))
let addi b rd rs v = emit b (Isa.Addi (rd, rs, v))
let load b rd rs off = emit b (Isa.Load (rd, rs, off))
let store b rs rbase off = emit b (Isa.Store (rs, rbase, off))
let push b r = emit b (Isa.Push r)
let pop b r = emit b (Isa.Pop r)
let sp b rd = emit b (Isa.Sp rd)
let fp b rd = emit b (Isa.Fp rd)
let jmp b l = emit_ref b (fun t -> Isa.Jmp t) l
let beq b x y l = emit_ref b (fun t -> Isa.Beq (x, y, t)) l
let bne b x y l = emit_ref b (fun t -> Isa.Bne (x, y, t)) l
let blt b x y l = emit_ref b (fun t -> Isa.Blt (x, y, t)) l
let bge b x y l = emit_ref b (fun t -> Isa.Bge (x, y, t)) l
let call b l = emit_ref b (fun t -> Isa.Call t) l
let ret b = emit b Isa.Ret
let enter b n = emit b (Isa.Enter n)
let leave b = emit b Isa.Leave
let sys b sc = emit b (Isa.Sys sc)
let halt b = emit b Isa.Halt
let nop b = emit b Isa.Nop
let lea b rd l = emit_ref b (fun t -> Isa.Imm (rd, t)) l

let assemble b : Program.t =
  Vec.iter
    (fun (idx, name) ->
       match Hashtbl.find_opt b.labels name with
       | None -> failwith (Printf.sprintf "Asm: undefined label %s" name)
       | Some target -> Vec.set b.code idx (Isa.with_target (Vec.get b.code idx) target))
    b.fixups;
  Program.make ~code:(Vec.to_array b.code) ~data:(Buffer.to_bytes b.data)
    ~entries:(List.rev b.entries)
