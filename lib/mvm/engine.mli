(** Fast MVM execution engines.

    Three interchangeable machines behind one [run] surface, all
    bit-exact against {!Interp.step}:

    - [Step] — per-instruction {!Interp.step} (the reference oracle).
    - [Threaded] — run-until-event threaded dispatch over the
      pre-decoded form ({!Decode.t}), with an inlined one-entry page
      cache on the guest load/store path.
    - [Blocks] — basic-block closure compilation: each block becomes one
      chained OCaml closure, cached per entry pc.

    The contract that keeps every virtual-time output byte-identical
    across engines: [fuel] is an exact instruction budget (each
    Running-outcome instruction consumes 1 and counts 1 step;
    Sys/Halt/fault instructions consume and count none), the fuel check
    precedes the wild-pc check, and faults restore the faulting
    instruction's pc while preserving partial sp/fp mutations — exactly
    the historic per-step scheduler loop. See DESIGN §15. *)

type kind =
  | Step
  | Threaded
  | Blocks

val kind_to_string : kind -> string
(** ["step"] / ["threaded"] / ["blocks"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string} ([None] on anything else). *)

type t

(** [create kind program] builds an engine over [program]'s pre-decoded
    form ({!Program.decoded}). For [Blocks], statically known block
    leaders are compiled eagerly; computed targets (lea'd labels, spawn
    entries) compile lazily on first execution. Engines hold no
    per-thread state: any thread of the program can run on the same
    engine, including after migration/checkpoint-restore. *)
val create : kind -> Program.t -> t

val kind : t -> kind

(** [run t ctx space ~fuel] executes from [ctx] for at most [fuel]
    Running-outcome instructions and returns [(outcome, steps)] where
    [steps] is the exact count executed (each owes the scheduler one
    instruction charge; the instruction producing [Syscall]/[Halted]/
    [Fault] is {e not} included — the caller accounts for it, as the
    per-step loop did). [ctx] is committed on exit: on [Syscall] the pc
    is past the Sys instruction, on [Fault] it is the faulting
    instruction's pc ([Wild_pc] keeps the wild value), on [Running]
    (fuel exhausted) it is the next instruction to execute. Page caches
    live only within the call, so the caller may migrate, checkpoint,
    restore or unmap between calls with no invalidation hook. *)
val run : t -> Interp.context -> Pm2_vmem.Address_space.t -> fuel:int -> Interp.outcome * int
