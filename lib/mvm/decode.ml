(* Pre-decoded program form: the variant-free lowering of [Isa.instr]
   that the fast execution engines run from.

   One instruction becomes a fixed-width group of [stride] ints in one
   flat array — opcode, then up to three operand fields — so the hot
   loop fetches with two [Array.unsafe_get]s from a single cache-warm
   buffer and dispatches on a small dense int (which the OCaml compiler
   turns into a jump table), never touching the boxed AST.

   Decoding validates every register operand once, up front; that single
   check is what licenses the engines' unchecked register-file accesses.
   Branch/call targets are deliberately NOT validated: a wild target is
   defined guest behaviour (the [Wild_pc] fault, detected at the fetch
   of the next instruction), not a malformed program. *)

type t = {
  code : int array; (* stride-wide groups: op, a, b, c per pc *)
  len : int; (* instruction count = Array.length code / stride *)
}

let stride = 4

(* Opcodes follow [Isa.instr] constructor order exactly. *)
let op_imm = 0
let op_mov = 1
let op_add = 2
let op_sub = 3
let op_mul = 4
let op_div = 5
let op_mod = 6
let op_addi = 7
let op_load = 8
let op_store = 9
let op_push = 10
let op_pop = 11
let op_sp = 12
let op_fp = 13
let op_jmp = 14
let op_beq = 15
let op_bne = 16
let op_blt = 17
let op_bge = 18
let op_call = 19
let op_ret = 20
let op_enter = 21
let op_leave = 22
let op_sys = 23
let op_halt = 24
let op_nop = 25

(* An instruction that unconditionally ends a basic block: control never
   falls through to pc+1 without the engine re-entering its driver. *)
let is_terminator op =
  (op >= op_jmp && op <= op_ret) || op = op_sys || op = op_halt

let int_of_syscall : Isa.syscall -> int = function
  | Isa.Sys_print -> 0
  | Sys_migrate -> 1
  | Sys_isomalloc -> 2
  | Sys_isofree -> 3
  | Sys_malloc -> 4
  | Sys_free -> 5
  | Sys_self -> 6
  | Sys_node -> 7
  | Sys_yield -> 8
  | Sys_register_ptr -> 9
  | Sys_unregister_ptr -> 10
  | Sys_spawn -> 11
  | Sys_clock -> 12
  | Sys_rand -> 13
  | Sys_workload -> 14
  | Sys_migrate_thread -> 15
  | Sys_rpc -> 16
  | Sys_join -> 17
  | Sys_isorealloc -> 18
  | Sys_sem_create -> 19
  | Sys_sem_p -> 20
  | Sys_sem_v -> 21
  | Sys_sleep -> 22
  | Sys_barrier -> 23

let syscall_table : Isa.syscall array =
  [|
    Isa.Sys_print;
    Sys_migrate;
    Sys_isomalloc;
    Sys_isofree;
    Sys_malloc;
    Sys_free;
    Sys_self;
    Sys_node;
    Sys_yield;
    Sys_register_ptr;
    Sys_unregister_ptr;
    Sys_spawn;
    Sys_clock;
    Sys_rand;
    Sys_workload;
    Sys_migrate_thread;
    Sys_rpc;
    Sys_join;
    Sys_isorealloc;
    Sys_sem_create;
    Sys_sem_p;
    Sys_sem_v;
    Sys_sleep;
    Sys_barrier;
  |]

let syscall_of_int n = syscall_table.(n)

let of_code (code : Isa.instr array) : t =
  let len = Array.length code in
  let d = Array.make (len * stride) 0 in
  let reg pc r =
    if r < 0 || r >= Isa.num_regs then
      invalid_arg
        (Printf.sprintf "Decode.of_code: register r%d out of range at pc %d" r pc);
    r
  in
  let put pc op a b c =
    let base = pc * stride in
    d.(base) <- op;
    d.(base + 1) <- a;
    d.(base + 2) <- b;
    d.(base + 3) <- c
  in
  Array.iteri
    (fun pc i ->
      match i with
      | Isa.Imm (rd, v) -> put pc op_imm (reg pc rd) v 0
      | Mov (rd, rs) -> put pc op_mov (reg pc rd) (reg pc rs) 0
      | Add (rd, a, b) -> put pc op_add (reg pc rd) (reg pc a) (reg pc b)
      | Sub (rd, a, b) -> put pc op_sub (reg pc rd) (reg pc a) (reg pc b)
      | Mul (rd, a, b) -> put pc op_mul (reg pc rd) (reg pc a) (reg pc b)
      | Div (rd, a, b) -> put pc op_div (reg pc rd) (reg pc a) (reg pc b)
      | Mod (rd, a, b) -> put pc op_mod (reg pc rd) (reg pc a) (reg pc b)
      | Addi (rd, rs, v) -> put pc op_addi (reg pc rd) (reg pc rs) v
      | Load (rd, rs, off) -> put pc op_load (reg pc rd) (reg pc rs) off
      | Store (rs, rbase, off) -> put pc op_store (reg pc rs) (reg pc rbase) off
      | Push rs -> put pc op_push (reg pc rs) 0 0
      | Pop rd -> put pc op_pop (reg pc rd) 0 0
      | Sp rd -> put pc op_sp (reg pc rd) 0 0
      | Fp rd -> put pc op_fp (reg pc rd) 0 0
      | Jmp tgt -> put pc op_jmp tgt 0 0
      | Beq (a, b, tgt) -> put pc op_beq (reg pc a) (reg pc b) tgt
      | Bne (a, b, tgt) -> put pc op_bne (reg pc a) (reg pc b) tgt
      | Blt (a, b, tgt) -> put pc op_blt (reg pc a) (reg pc b) tgt
      | Bge (a, b, tgt) -> put pc op_bge (reg pc a) (reg pc b) tgt
      | Call tgt -> put pc op_call tgt 0 0
      | Ret -> put pc op_ret 0 0 0
      | Enter n -> put pc op_enter n 0 0
      | Leave -> put pc op_leave 0 0 0
      | Sys sc -> put pc op_sys (int_of_syscall sc) 0 0
      | Halt -> put pc op_halt 0 0 0
      | Nop -> put pc op_nop 0 0 0)
    code;
  { code = d; len }

let op t pc = t.code.(pc * stride)
