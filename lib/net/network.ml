module Obs = Pm2_obs
module Fault = Pm2_fault

type t = {
  engine : Pm2_sim.Engine.t;
  cost : Pm2_sim.Cost_model.t;
  nodes : int;
  msg_count : int array; (* src * nodes + dst *)
  byte_count : int array;
  obs : Obs.Collector.t;
  faults : Fault.Plan.t;
}

let create ?(obs = Obs.Collector.null) ?(faults = Fault.Plan.none) engine cost ~nodes =
  if nodes <= 0 then invalid_arg "Network.create: nodes <= 0";
  {
    engine;
    cost;
    nodes;
    msg_count = Array.make (nodes * nodes) 0;
    byte_count = Array.make (nodes * nodes) 0;
    obs;
    faults;
  }

let nodes t = t.nodes

let engine t = t.engine

let cost_model t = t.cost

let faults t = t.faults

let check t who = if who < 0 || who >= t.nodes then invalid_arg "Network: bad node id"

let record t ~src ~dst ~bytes =
  let i = (src * t.nodes) + dst in
  t.msg_count.(i) <- t.msg_count.(i) + 1;
  t.byte_count.(i) <- t.byte_count.(i) + bytes

let transfer_time t ~bytes = Pm2_sim.Cost_model.message_cost t.cost ~bytes

(* One copy travelling through a faulty network: the destination interface
   may have died while the message was in flight. *)
let deliver_faulty t ~src ~dst ~bytes ~delay payload k =
  Pm2_sim.Engine.schedule_after t.engine ~delay (fun () ->
      let now = Pm2_sim.Engine.now t.engine in
      if not (Fault.Plan.node_alive t.faults ~node:dst ~now) then begin
        Fault.Plan.note_drop t.faults;
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst
            (Obs.Event.Fault_inject { kind = Obs.Event.Drop_dead; src; dst; bytes })
      end
      else begin
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst (Obs.Event.Packet_deliver { src; dst; bytes });
        k payload
      end)

let send_faulty t ~src ~dst ~bytes ~delay payload k =
  match Fault.Plan.route t.faults ~now:(Pm2_sim.Engine.now t.engine) ~src ~dst with
  | Fault.Plan.Dropped reason ->
    Fault.Plan.note_drop t.faults;
    if Obs.Collector.enabled t.obs then begin
      let kind =
        match reason with
        | Fault.Plan.Loss -> Obs.Event.Drop_loss
        | Fault.Plan.Partitioned -> Obs.Event.Drop_partition
        | Fault.Plan.Node_down _ -> Obs.Event.Drop_dead
      in
      Obs.Collector.emit t.obs ~node:src (Obs.Event.Fault_inject { kind; src; dst; bytes })
    end
  | Fault.Plan.Deliver copies ->
    List.iteri
      (fun i { Fault.Plan.extra_delay; corrupted } ->
        if i > 0 then begin
          Fault.Plan.note_duplicate t.faults;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Fault_inject { kind = Obs.Event.Duplicate; src; dst; bytes })
        end;
        let payload =
          if corrupted then begin
            Fault.Plan.note_corrupt t.faults;
            if Obs.Collector.enabled t.obs then
              Obs.Collector.emit t.obs ~node:src
                (Obs.Event.Fault_inject { kind = Obs.Event.Corrupt; src; dst; bytes });
            Fault.Plan.corrupt_copy t.faults payload
          end
          else payload
        in
        deliver_faulty t ~src ~dst ~bytes ~delay:(delay +. extra_delay) payload k)
      copies

let send t ~src ~dst payload k =
  check t src;
  check t dst;
  let bytes = Bytes.length payload in
  record t ~src ~dst ~bytes;
  if Obs.Collector.enabled t.obs then
    Obs.Collector.emit t.obs ~node:src (Obs.Event.Packet_send { src; dst; bytes });
  let delay =
    if src = dst then Pm2_sim.Cost_model.memcpy_cost t.cost ~bytes
    else transfer_time t ~bytes
  in
  (* Loop-back traffic never touches the interconnect, so the fault plan
     does not apply to self-sends; with the plan disabled this branch is
     the exact pre-fault code path. *)
  if (not (Fault.Plan.enabled t.faults)) || src = dst then
    Pm2_sim.Engine.schedule_after t.engine ~delay (fun () ->
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst (Obs.Event.Packet_deliver { src; dst; bytes });
        k payload)
  else send_faulty t ~src ~dst ~bytes ~delay payload k

let messages_sent t = Array.fold_left ( + ) 0 t.msg_count

let bytes_sent t = Array.fold_left ( + ) 0 t.byte_count

let link_stats t ~src ~dst =
  check t src;
  check t dst;
  let i = (src * t.nodes) + dst in
  (t.msg_count.(i), t.byte_count.(i))

let reset_stats t =
  Array.fill t.msg_count 0 (Array.length t.msg_count) 0;
  Array.fill t.byte_count 0 (Array.length t.byte_count) 0

let record_virtual t ~src ~dst ~bytes =
  check t src;
  check t dst;
  record t ~src ~dst ~bytes;
  if Obs.Collector.enabled t.obs then begin
    Obs.Collector.emit t.obs ~node:src (Obs.Event.Packet_send { src; dst; bytes });
    (* Symmetric with [send]: virtual traffic is considered delivered at
       the instant it is recorded, so per-node deliver counters balance
       send counters. *)
    Obs.Collector.emit t.obs ~node:dst (Obs.Event.Packet_deliver { src; dst; bytes })
  end
