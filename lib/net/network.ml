module Obs = Pm2_obs

type t = {
  engine : Pm2_sim.Engine.t;
  cost : Pm2_sim.Cost_model.t;
  nodes : int;
  msg_count : int array; (* src * nodes + dst *)
  byte_count : int array;
  obs : Obs.Collector.t;
}

let create ?(obs = Obs.Collector.null) engine cost ~nodes =
  if nodes <= 0 then invalid_arg "Network.create: nodes <= 0";
  {
    engine;
    cost;
    nodes;
    msg_count = Array.make (nodes * nodes) 0;
    byte_count = Array.make (nodes * nodes) 0;
    obs;
  }

let nodes t = t.nodes

let engine t = t.engine

let cost_model t = t.cost

let check t who = if who < 0 || who >= t.nodes then invalid_arg "Network: bad node id"

let record t ~src ~dst ~bytes =
  let i = (src * t.nodes) + dst in
  t.msg_count.(i) <- t.msg_count.(i) + 1;
  t.byte_count.(i) <- t.byte_count.(i) + bytes

let transfer_time t ~bytes = Pm2_sim.Cost_model.message_cost t.cost ~bytes

let send t ~src ~dst payload k =
  check t src;
  check t dst;
  let bytes = Bytes.length payload in
  record t ~src ~dst ~bytes;
  if Obs.Collector.enabled t.obs then
    Obs.Collector.emit t.obs ~node:src (Obs.Event.Packet_send { src; dst; bytes });
  let delay =
    if src = dst then Pm2_sim.Cost_model.memcpy_cost t.cost ~bytes
    else transfer_time t ~bytes
  in
  Pm2_sim.Engine.schedule_after t.engine ~delay (fun () ->
      if Obs.Collector.enabled t.obs then
        Obs.Collector.emit t.obs ~node:dst (Obs.Event.Packet_deliver { src; dst; bytes });
      k payload)

let messages_sent t = Array.fold_left ( + ) 0 t.msg_count

let bytes_sent t = Array.fold_left ( + ) 0 t.byte_count

let link_stats t ~src ~dst =
  check t src;
  check t dst;
  let i = (src * t.nodes) + dst in
  (t.msg_count.(i), t.byte_count.(i))

let reset_stats t =
  Array.fill t.msg_count 0 (Array.length t.msg_count) 0;
  Array.fill t.byte_count 0 (Array.length t.byte_count) 0

let record_virtual t ~src ~dst ~bytes =
  check t src;
  check t dst;
  record t ~src ~dst ~bytes;
  if Obs.Collector.enabled t.obs then
    Obs.Collector.emit t.obs ~node:src (Obs.Event.Packet_send { src; dst; bytes })
