(** Madeleine-style pack/unpack buffers.

    PM2's migration protocol copies the thread resources into a
    communication buffer, ships it, and unpacks on the destination (paper,
    §2). We reproduce that with real byte buffers so that message sizes —
    which drive the network cost model — are faithful to what is actually
    packed (descriptor fields, slot headers, live blocks). *)

(** {1 Packing} *)

type packer

val packer : unit -> packer

val pack_int : packer -> int -> unit
(** 8 bytes, little-endian. *)

val pack_float : packer -> float -> unit

val pack_bytes : packer -> Bytes.t -> unit
(** Length-prefixed byte block. *)

val pack_string : packer -> string -> unit

val pack_list : packer -> ('a -> unit) -> 'a list -> unit
(** Length-prefixed list; elements packed by the callback. *)

(** [pack_raw p ~len write] packs a length-prefixed block of exactly [len]
    bytes produced by [write] appending directly to the wire buffer — the
    zero-copy variant of {!pack_bytes} used by the migration packer to
    stream simulated memory onto the wire without an intermediate copy.
    The wire format is identical to [pack_bytes].
    @raise Invalid_argument if [write] appends a different number of
    bytes. *)
val pack_raw : packer -> len:int -> (Buffer.t -> unit) -> unit

(** [pack_varint p v] packs [v] as a zigzag-folded LEB128 varint: the
    sign bit moves to bit 0, then 7 bits per wire byte, high bit set on
    all but the last. Values in [-64, 63] take one byte; slot-sized
    addresses take 5 — the compact integer encoding of the v2 migration
    codec ({!Codec}). *)
val pack_varint : packer -> int -> unit

(** [pack_unprefixed p ~len write] appends exactly [len] bytes produced
    by [write] with {e no} length prefix — for codec layers that already
    know the length from their own framing (e.g. fixed-size page images).
    @raise Invalid_argument if [write] appends a different number of
    bytes. *)
val pack_unprefixed : packer -> len:int -> (Buffer.t -> unit) -> unit

val packed_size : packer -> int

val contents : packer -> Bytes.t

(** {1 Unpacking} *)

type unpacker

val unpacker : Bytes.t -> unpacker

val unpack_int : unpacker -> int
val unpack_float : unpacker -> float
val unpack_bytes : unpacker -> Bytes.t
val unpack_string : unpacker -> string
val unpack_list : unpacker -> (unit -> 'a) -> 'a list

(** [unpack_view u] consumes a length-prefixed block like {!unpack_bytes}
    but returns a [(data, pos, len)] view into the wire buffer instead of
    copying it out. The view is read-only by convention; it aliases the
    unpacker's buffer. *)
val unpack_view : unpacker -> Bytes.t * int * int

(** [unpack_varint u] reads one {!pack_varint} integer.
    @raise Invalid_argument on truncation or overflow. *)
val unpack_varint : unpacker -> int

(** [unpack_take u len] consumes the next [len] un-prefixed bytes and
    returns an aliasing [(data, pos)] view — the inverse of
    {!pack_unprefixed}.
    @raise Invalid_argument if fewer than [len] bytes remain. *)
val unpack_take : unpacker -> int -> Bytes.t * int

val remaining : unpacker -> int
(** Bytes not yet consumed (0 after a complete unpack). *)

(** {1 Integrity} *)

val checksum : Bytes.t -> int
(** FNV-1a 64-bit hash folded to a non-negative OCaml [int]. Used by the
    reliable-delivery layer and the two-phase migration protocol to
    detect corrupted wire buffers. *)
