module As = Pm2_vmem.Address_space
module Layout = Pm2_vmem.Layout

type version = V1 | V2 | V3

(* "PM2C" little-endian, packed as a full word so a frame can never be
   confused with a bare v1 migration buffer (whose first word is the
   "MIGR" descriptor magic). *)
let frame_magic = 0x43324d50

let version_to_int = function V1 -> 1 | V2 -> 2 | V3 -> 3

let version_of_int = function
  | 1 -> Some V1
  | 2 -> Some V2
  | 3 -> Some V3
  | _ -> None

let version_name = function V1 -> "v1" | V2 -> "v2" | V3 -> "v3"

(* Trace context rides the frame behind a flag bit in the version word:
   [version lor trace_flag] announces two extra ints (trace id, parent
   span id) between the version and the payload. Untraced frames are
   byte-for-byte what they always were — the flag only ever appears when
   tracing is on, so tracing-off runs stay identical down to the wire
   (and therefore down to virtual transfer times). Decoders mask the
   flag off, so v1/v2/v3 frames from before this scheme parse
   unchanged. *)
let trace_flag = 8

let frame ?trace version payload =
  let p = Packet.packer () in
  Packet.pack_int p frame_magic;
  (match trace with
   | None -> Packet.pack_int p (version_to_int version)
   | Some (tid, parent) ->
     Packet.pack_int p (version_to_int version lor trace_flag);
     Packet.pack_int p tid;
     Packet.pack_int p parent);
  Packet.pack_bytes p payload;
  Packet.contents p

let starts_with_magic buf =
  Bytes.length buf >= 8 && Int64.to_int (Bytes.get_int64_le buf 0) = frame_magic

let parse buf =
  if not (starts_with_magic buf) then
    (* Bare legacy buffer: everything that predates the framed codec is a
       v1 payload by definition, so old wire images keep decoding. *)
    Ok (V1, buf)
  else
    try
      let u = Packet.unpacker buf in
      let _magic = Packet.unpack_int u in
      let v = Packet.unpack_int u in
      match version_of_int (v land lnot trace_flag) with
      | None -> Error (Printf.sprintf "Codec: unknown frame version %d" v)
      (* Only the group codecs ever carry a context; a "traced v1" word
         (9) can only be corruption, and must keep failing as such. *)
      | Some V1 when v land trace_flag <> 0 ->
        Error (Printf.sprintf "Codec: unknown frame version %d" v)
      | Some version ->
        if v land trace_flag <> 0 then begin
          let _trace = Packet.unpack_int u in
          let _parent = Packet.unpack_int u in
          ()
        end;
        let payload = Packet.unpack_bytes u in
        if Packet.remaining u <> 0 then Error "Codec: trailing bytes after frame"
        else Ok (version, payload)
    with Invalid_argument e -> Error ("Codec: " ^ e)

(* Typed decode errors: fault-injected corruption must surface as a value
   the protocol layer can act on (nack / rollback), never as an exception
   escaping the codec. *)
type error =
  | Bad_version of int
  | Bad_manifest of string

let error_to_string = function
  | Bad_version v -> Printf.sprintf "unknown frame version %d" v
  | Bad_manifest m -> "bad manifest: " ^ m

(* [decode_traced] additionally surfaces the frame's trace context (if
   any) for destination-side span parenting. *)
let decode_traced buf =
  if not (starts_with_magic buf) then Ok (V1, None, buf)
  else
    try
      let u = Packet.unpacker buf in
      let _magic = Packet.unpack_int u in
      let v = Packet.unpack_int u in
      match version_of_int (v land lnot trace_flag) with
      | None -> Error (Bad_version v)
      | Some V1 when v land trace_flag <> 0 -> Error (Bad_version v)
      | Some version ->
        let trace =
          if v land trace_flag <> 0 then begin
            let tid = Packet.unpack_int u in
            let parent = Packet.unpack_int u in
            Some (tid, parent)
          end
          else None
        in
        let payload = Packet.unpack_bytes u in
        if Packet.remaining u <> 0 then
          Error (Bad_manifest "trailing bytes after frame")
        else Ok (version, trace, payload)
    with Invalid_argument e -> Error (Bad_manifest e)

let decode buf =
  match decode_traced buf with
  | Ok (version, _, payload) -> Ok (version, payload)
  | Error e -> Error e

type run = {
  data : bool;
  pages : int;
}

let manifest space ~addr ~size =
  if size mod Layout.page_size <> 0 || size <= 0 then
    invalid_arg "Codec.manifest: size not a positive multiple of the page size";
  let npages = size / Layout.page_size in
  let runs = ref [] in
  for i = npages - 1 downto 0 do
    let data = not (As.page_is_zero space (addr + (i * Layout.page_size))) in
    match !runs with
    | r :: rest when r.data = data -> runs := { r with pages = r.pages + 1 } :: rest
    | _ -> runs := { data; pages = 1 } :: !runs
  done;
  !runs

let encode_runs p runs =
  Packet.pack_varint p (List.length runs);
  List.iter
    (fun r -> Packet.pack_varint p ((r.pages lsl 1) lor (if r.data then 1 else 0)))
    runs

let decode_runs u =
  let n = Packet.unpack_varint u in
  (* Every run occupies at least one byte, so a count exceeding the bytes
     left is corruption — reject it before List.init tries to allocate. *)
  if n < 0 || n > Packet.remaining u then
    invalid_arg "Codec: implausible run count";
  List.init n (fun _ ->
      let v = Packet.unpack_varint u in
      if v < 0 then invalid_arg "Codec: negative run word";
      let pages = v lsr 1 in
      if pages <= 0 then invalid_arg "Codec: empty manifest run";
      { data = v land 1 = 1; pages })

let encode_range p space ~addr ~size =
  let runs = manifest space ~addr ~size in
  encode_runs p runs;
  let pos = ref addr in
  let data_pages = ref 0 and zero_pages = ref 0 in
  List.iter
    (fun r ->
      if r.data then begin
        data_pages := !data_pages + r.pages;
        let len = r.pages * Layout.page_size in
        Packet.pack_unprefixed p ~len (fun buf ->
            As.add_to_buffer space ~addr:!pos ~len buf)
      end
      else zero_pages := !zero_pages + r.pages;
      pos := !pos + (r.pages * Layout.page_size))
    runs;
  (!data_pages, !zero_pages)

let decode_range u space ~addr ~size =
  let runs = decode_runs u in
  let total = List.fold_left (fun acc r -> acc + r.pages) 0 runs in
  if total * Layout.page_size <> size then
    invalid_arg "Codec: manifest does not cover the declared range";
  let pos = ref addr in
  let data_pages = ref 0 in
  List.iter
    (fun r ->
      if r.data then begin
        data_pages := !data_pages + r.pages;
        let len = r.pages * Layout.page_size in
        let src, off = Packet.unpack_take u len in
        As.store_sub space !pos src ~pos:off ~len
      end;
      (* Zero runs need no bytes and no stores: the destination mapped the
         range fresh, so those pages are already zero. *)
      pos := !pos + (r.pages * Layout.page_size))
    runs;
  !data_pages

(* {1 v3 delta manifests}

   A v3 slot image generalises the v2 two-class manifest to three classes:

     varint nruns
     nruns x [ varint (pages lsl 2) lor cls     cls: 0=Zero 1=Data 2=Cached
               if cls = Cached: pages x 8-byte LE content hash ]
     raw page bytes of every Data run, in manifest order

   [Cached] pages carry only their hash: the destination reconstructs them
   from its retained residual image and must fall back to a full resend
   whenever the lookup fails — the wire format guarantees it can always
   detect that case, never silently keep a stale page. *)

type page_class =
  | Zero
  | Data
  | Cached of int

let class_tag = function Zero -> 0 | Data -> 1 | Cached _ -> 2

let same_class a b =
  match a, b with
  | Zero, Zero | Data, Data | Cached _, Cached _ -> true
  | _ -> false

let delta_manifest space ~addr ~size ~known =
  if size mod Layout.page_size <> 0 || size <= 0 then
    invalid_arg "Codec.delta_manifest: size not a positive multiple of the page size";
  let npages = size / Layout.page_size in
  List.init npages (fun i ->
      let a = addr + (i * Layout.page_size) in
      if As.page_is_zero space a then Zero
      else
        let h = As.page_hash space a in
        match known a with
        | Some h' when h' = h -> Cached h
        | _ -> Data)

(* Collapse the per-page classification into runs of one class; Cached runs
   keep their per-page hashes (in address order). *)
let delta_runs classes =
  let rec group acc = function
    | [] -> List.rev acc
    | c :: rest ->
      (match acc with
       | (c', n, hs) :: tl when same_class c c' ->
         let hs = match c with Cached h -> h :: hs | _ -> hs in
         group ((c', n + 1, hs) :: tl) rest
       | _ ->
         let hs = match c with Cached h -> [ h ] | _ -> [] in
         group ((c, 1, hs) :: acc) rest)
  in
  List.map (fun (c, n, hs) -> (c, n, List.rev hs)) (group [] classes)

let encode_delta_range p space ~addr ~size ~known =
  let runs = delta_runs (delta_manifest space ~addr ~size ~known) in
  Packet.pack_varint p (List.length runs);
  List.iter
    (fun (c, pages, hashes) ->
      Packet.pack_varint p ((pages lsl 2) lor class_tag c);
      List.iter (Packet.pack_int p) hashes)
    runs;
  let pos = ref addr in
  let data_pages = ref 0 and zero_pages = ref 0 and cached_pages = ref 0 in
  List.iter
    (fun (c, pages, _) ->
      (match c with
       | Zero -> zero_pages := !zero_pages + pages
       | Cached _ -> cached_pages := !cached_pages + pages
       | Data ->
         data_pages := !data_pages + pages;
         let len = pages * Layout.page_size in
         Packet.pack_unprefixed p ~len (fun buf ->
             As.add_to_buffer space ~addr:!pos ~len buf));
      pos := !pos + (pages * Layout.page_size))
    runs;
  (!data_pages, !zero_pages, !cached_pages)

let decode_delta_runs u =
  let n = Packet.unpack_varint u in
  if n < 0 || n > Packet.remaining u then
    invalid_arg "Codec: implausible run count";
  List.init n (fun _ ->
      let v = Packet.unpack_varint u in
      if v < 0 then invalid_arg "Codec: negative run word";
      let pages = v lsr 2 in
      if pages <= 0 then invalid_arg "Codec: empty manifest run";
      match v land 3 with
      | 0 -> (Zero, pages, [])
      | 1 -> (Data, pages, [])
      | 2 ->
        let hashes =
          List.init pages (fun _ ->
              let h = Packet.unpack_int u in
              if h < 0 then invalid_arg "Codec: negative page hash";
              h)
        in
        (Cached 0, pages, hashes)
      | _ -> invalid_arg "Codec: unknown page class")

let decode_delta_range u space ~addr ~size ~restore =
  let runs = decode_delta_runs u in
  let total = List.fold_left (fun acc (_, pages, _) -> acc + pages) 0 runs in
  if total * Layout.page_size <> size then
    invalid_arg "Codec: manifest does not cover the declared range";
  let pos = ref addr in
  let data_pages = ref 0 in
  let missing = ref [] in
  List.iter
    (fun (c, pages, hashes) ->
      (match c with
       | Zero -> ()
       | Data ->
         data_pages := !data_pages + pages;
         let len = pages * Layout.page_size in
         let src, off = Packet.unpack_take u len in
         As.store_sub space !pos src ~pos:off ~len
       | Cached _ ->
         List.iteri
           (fun i h ->
             let a = !pos + (i * Layout.page_size) in
             if not (restore ~addr:a ~hash:h) then
               missing := (a, h) :: !missing)
           hashes);
      pos := !pos + (pages * Layout.page_size))
    runs;
  (!data_pages, List.rev !missing)

(* Checked wrappers: give protocol code a raise-free path through a decoder
   fed with attacker-controlled (fault-injected) bytes. *)
let checked f = try Ok (f ()) with Invalid_argument e -> Error (Bad_manifest e)

let try_decode_range u space ~addr ~size =
  checked (fun () -> decode_range u space ~addr ~size)

let try_decode_delta_range u space ~addr ~size ~restore =
  checked (fun () -> decode_delta_range u space ~addr ~size ~restore)
