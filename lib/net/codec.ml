module As = Pm2_vmem.Address_space
module Layout = Pm2_vmem.Layout

type version = V1 | V2

(* "PM2C" little-endian, packed as a full word so a frame can never be
   confused with a bare v1 migration buffer (whose first word is the
   "MIGR" descriptor magic). *)
let frame_magic = 0x43324d50

let version_to_int = function V1 -> 1 | V2 -> 2

let version_of_int = function
  | 1 -> Some V1
  | 2 -> Some V2
  | _ -> None

let frame version payload =
  let p = Packet.packer () in
  Packet.pack_int p frame_magic;
  Packet.pack_int p (version_to_int version);
  Packet.pack_bytes p payload;
  Packet.contents p

let starts_with_magic buf =
  Bytes.length buf >= 8 && Int64.to_int (Bytes.get_int64_le buf 0) = frame_magic

let parse buf =
  if not (starts_with_magic buf) then
    (* Bare legacy buffer: everything that predates the framed codec is a
       v1 payload by definition, so old wire images keep decoding. *)
    Ok (V1, buf)
  else
    try
      let u = Packet.unpacker buf in
      let _magic = Packet.unpack_int u in
      let v = Packet.unpack_int u in
      match version_of_int v with
      | None -> Error (Printf.sprintf "Codec: unknown frame version %d" v)
      | Some version ->
        let payload = Packet.unpack_bytes u in
        if Packet.remaining u <> 0 then Error "Codec: trailing bytes after frame"
        else Ok (version, payload)
    with Invalid_argument e -> Error ("Codec: " ^ e)

type run = {
  data : bool;
  pages : int;
}

let manifest space ~addr ~size =
  if size mod Layout.page_size <> 0 || size <= 0 then
    invalid_arg "Codec.manifest: size not a positive multiple of the page size";
  let npages = size / Layout.page_size in
  let runs = ref [] in
  for i = npages - 1 downto 0 do
    let data = not (As.page_is_zero space (addr + (i * Layout.page_size))) in
    match !runs with
    | r :: rest when r.data = data -> runs := { r with pages = r.pages + 1 } :: rest
    | _ -> runs := { data; pages = 1 } :: !runs
  done;
  !runs

let encode_runs p runs =
  Packet.pack_varint p (List.length runs);
  List.iter
    (fun r -> Packet.pack_varint p ((r.pages lsl 1) lor (if r.data then 1 else 0)))
    runs

let decode_runs u =
  let n = Packet.unpack_varint u in
  if n < 0 then invalid_arg "Codec: negative run count";
  List.init n (fun _ ->
      let v = Packet.unpack_varint u in
      if v < 0 then invalid_arg "Codec: negative run word";
      { data = v land 1 = 1; pages = v lsr 1 })

let encode_range p space ~addr ~size =
  let runs = manifest space ~addr ~size in
  encode_runs p runs;
  let pos = ref addr in
  let data_pages = ref 0 and zero_pages = ref 0 in
  List.iter
    (fun r ->
      if r.data then begin
        data_pages := !data_pages + r.pages;
        let len = r.pages * Layout.page_size in
        Packet.pack_unprefixed p ~len (fun buf ->
            As.add_to_buffer space ~addr:!pos ~len buf)
      end
      else zero_pages := !zero_pages + r.pages;
      pos := !pos + (r.pages * Layout.page_size))
    runs;
  (!data_pages, !zero_pages)

let decode_range u space ~addr ~size =
  let runs = decode_runs u in
  let total = List.fold_left (fun acc r -> acc + r.pages) 0 runs in
  if total * Layout.page_size <> size then
    invalid_arg "Codec: manifest does not cover the declared range";
  let pos = ref addr in
  let data_pages = ref 0 in
  List.iter
    (fun r ->
      if r.data then begin
        data_pages := !data_pages + r.pages;
        let len = r.pages * Layout.page_size in
        let src, off = Packet.unpack_take u len in
        As.store_sub space !pos src ~pos:off ~len
      end;
      (* Zero runs need no bytes and no stores: the destination mapped the
         range fresh, so those pages are already zero. *)
      pos := !pos + (r.pages * Layout.page_size))
    runs;
  !data_pages
