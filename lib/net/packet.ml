type packer = Buffer.t

let packer () = Buffer.create 256

let pack_int p v = Buffer.add_int64_le p (Int64.of_int v)

let pack_float p v = Buffer.add_int64_le p (Int64.bits_of_float v)

let pack_bytes p b =
  pack_int p (Bytes.length b);
  Buffer.add_bytes p b

let pack_string p s = pack_bytes p (Bytes.of_string s)

let pack_raw p ~len write =
  pack_int p len;
  let before = Buffer.length p in
  write p;
  if Buffer.length p - before <> len then
    invalid_arg "Packet.pack_raw: writer produced a different length"

let pack_list p f l =
  pack_int p (List.length l);
  List.iter f l

(* Zigzag folds the sign bit into bit 0 so small negative values stay
   small on the wire; LEB128 then emits 7 bits per byte. *)
let zigzag v = (v lsl 1) lxor (v asr (Sys.int_size - 1))
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let pack_varint p v =
  let z = ref (zigzag v) in
  let continue = ref true in
  while !continue do
    let b = !z land 0x7f in
    z := !z lsr 7;
    if !z = 0 then begin
      Buffer.add_char p (Char.chr b);
      continue := false
    end
    else Buffer.add_char p (Char.chr (b lor 0x80))
  done

let pack_unprefixed p ~len write =
  let before = Buffer.length p in
  write p;
  if Buffer.length p - before <> len then
    invalid_arg "Packet.pack_unprefixed: writer produced a different length"

let packed_size p = Buffer.length p

let contents p = Buffer.to_bytes p

type unpacker = {
  data : Bytes.t;
  mutable pos : int;
}

let unpacker data = { data; pos = 0 }

let need u n =
  if u.pos + n > Bytes.length u.data then invalid_arg "Packet: truncated buffer"

let unpack_int u =
  need u 8;
  let v = Int64.to_int (Bytes.get_int64_le u.data u.pos) in
  u.pos <- u.pos + 8;
  v

let unpack_float u =
  need u 8;
  let v = Int64.float_of_bits (Bytes.get_int64_le u.data u.pos) in
  u.pos <- u.pos + 8;
  v

let unpack_bytes u =
  let len = unpack_int u in
  need u len;
  let b = Bytes.sub u.data u.pos len in
  u.pos <- u.pos + len;
  b

let unpack_string u = Bytes.to_string (unpack_bytes u)

let unpack_view u =
  let len = unpack_int u in
  need u len;
  let pos = u.pos in
  u.pos <- u.pos + len;
  (u.data, pos, len)

let unpack_list u f =
  let n = unpack_int u in
  List.init n (fun _ -> f ())

let unpack_varint u =
  let z = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    need u 1;
    let b = Char.code (Bytes.get u.data u.pos) in
    u.pos <- u.pos + 1;
    if !shift >= Sys.int_size then invalid_arg "Packet: varint overflow";
    z := !z lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  unzigzag !z

let unpack_take u len =
  if len < 0 then invalid_arg "Packet.unpack_take: negative length";
  need u len;
  let pos = u.pos in
  u.pos <- u.pos + len;
  (u.data, pos)

let remaining u = Bytes.length u.data - u.pos

(* FNV-1a 64, folded to a non-negative OCaml int, for end-to-end wire
   integrity checks (reliable delivery, migration transfer). *)
let checksum b =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    b;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)
