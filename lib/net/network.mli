(** A simulated cluster interconnect (Myrinet + BIP, as used in the paper's
    experiments, accessed through a Madeleine-like send interface).

    The network is modelled as full crossbar links with uniform one-way
    latency and bandwidth taken from {!Pm2_sim.Cost_model}. A message is a
    byte payload plus a delivery continuation: [send] schedules the
    continuation on the engine at [now + latency + size/bandwidth].
    Per-(src,dst) byte and message counters feed the experiment reports. *)

type t

(** [?obs] receives [Packet_send] at the emission time and
    [Packet_deliver] at the modelled arrival time for every {!send};
    {!record_virtual} traffic emits both at the recording instant.

    [?faults] threads a {!Pm2_fault.Plan} into every [send]: messages may
    then be dropped (loss, partition, dead interface), duplicated,
    delayed, reordered or corrupted, per the plan's seeded draws. With
    the default {!Pm2_fault.Plan.none} the send path is exactly the
    fault-free code. *)
val create :
  ?obs:Pm2_obs.Collector.t ->
  ?faults:Pm2_fault.Plan.t ->
  Pm2_sim.Engine.t ->
  Pm2_sim.Cost_model.t ->
  nodes:int ->
  t

val nodes : t -> int

val engine : t -> Pm2_sim.Engine.t

val cost_model : t -> Pm2_sim.Cost_model.t

(** The fault plan this network was created with ({!Pm2_fault.Plan.none}
    by default). Protocol layers use it to decide whether the hardened
    (two-phase, retransmitting) code paths are active. *)
val faults : t -> Pm2_fault.Plan.t

(** [send t ~src ~dst payload k] ships [payload] from node [src] to node
    [dst] and runs [k payload] at the modelled arrival time. Self-sends are
    allowed and modelled as a loop-back with latency 0 plus copy cost.
    @raise Invalid_argument on a bad node id. *)
val send : t -> src:int -> dst:int -> Bytes.t -> (Bytes.t -> unit) -> unit

(** [transfer_time t ~bytes] is the modelled one-way time for a message of
    [bytes] (used by protocols that account time without scheduling a
    delivery event, e.g. the synchronous-state negotiation). *)
val transfer_time : t -> bytes:int -> float

(** {1 Statistics} *)

val messages_sent : t -> int
val bytes_sent : t -> int

(** [link_stats t ~src ~dst] is [(messages, bytes)] for that direction. *)
val link_stats : t -> src:int -> dst:int -> int * int

val reset_stats : t -> unit

(** [record_virtual t ~src ~dst ~bytes] bumps the counters for traffic that
    is modelled (time-charged) but not routed through [send]. *)
val record_virtual : t -> src:int -> dst:int -> bytes:int -> unit
