(** Reliable delivery over the lossy {!Network}.

    BIP/Myrinet gave the original PM2 a reliable transport for free; once
    the fault plan can drop, duplicate or corrupt messages, the protocols
    that carry thread state need these guarantees back. This layer
    provides at-most-once delivery with best-effort retransmission:

    - every message carries a sequence number and an FNV checksum;
    - the receiver acknowledges each copy, suppresses duplicates (a
      per-connection dedup table) and silently discards corrupt frames;
    - the sender retransmits on an RTT-derived timeout with exponential
      backoff, up to a bounded number of attempts, then gives up and runs
      the failure continuation.

    Retransmissions, duplicate suppressions and give-ups are emitted
    through the observability taxonomy ([Net_retransmit],
    [Net_dup_suppress], [Net_give_up]).

    When the network's fault plan is disabled — or for self-sends — the
    layer degrades to a plain {!Network.send} with no header, no acks and
    no timers, so fault-free runs are unchanged. *)

type t

(** [create ?obs ?max_attempts ?backoff_cap ?fragment net] —
    [max_attempts] (default 12) bounds the retransmission budget of
    {!send} and {!send_train}; [backoff_cap] (default 6) caps the
    exponential-backoff exponent, so the timeout of attempt [n] is
    [base * 2 ^ min (n-1) backoff_cap]; [fragment] is the packet train
    fragment size in bytes (default 16 KB), the unit into which
    {!send_train} cuts its payload. The defaults reproduce the historic
    behaviour exactly.
    @raise Invalid_argument if [fragment <= 0], [max_attempts < 1] or
    [backoff_cap < 0]. *)
val create :
  ?obs:Pm2_obs.Collector.t ->
  ?max_attempts:int ->
  ?backoff_cap:int ->
  ?fragment:int ->
  Network.t ->
  t

(** Attach a causal tracer: train assembly at the destination then closes
    a [Train] span (first fragment arrival → assembly) parented through
    the trace context carried by the fragments. *)
val set_tracer : t -> Pm2_obs.Span.t -> unit

val network : t -> Network.t

(** [send t ~src ~dst payload ~on_delivered ~on_failed] ships [payload]
    with retransmission. [on_delivered payload] runs at the destination
    the first time an intact copy arrives; [on_failed ~reason] runs at
    the sender when the attempt budget is exhausted without the message
    ever reaching [dst]. Exactly one of the two continuations runs. *)
val send :
  t ->
  src:int ->
  dst:int ->
  Bytes.t ->
  on_delivered:(Bytes.t -> unit) ->
  on_failed:(reason:string -> unit) ->
  unit

(** [send_train t ~src ~dst payload ~on_delivered ~on_failed] ships a
    large payload as one {e packet train}: the payload is cut into
    fragments (each its own checksummed frame), and the receiver
    reassembles them and acknowledges the train {e as a single unit} once
    every fragment has arrived. On timeout the whole train is resent —
    the receiver drops fragments it already holds, so a resend costs only
    suppressed duplicates. [on_delivered] runs at the destination with
    the reassembled payload exactly once; [on_failed] runs at the sender
    if the attempt budget is exhausted, and the train id is poisoned so a
    straggler can never complete it afterwards (the all-or-nothing
    delivery the group-migration rollback relies on). Fault-free
    networks and self-sends degrade to one plain {!Network.send}.

    [trace] is a [(trace id, parent span id)] context appended to each
    fragment (two trailing words; absent when omitted, keeping untraced
    fragments byte-identical) — what parents the destination-side [Train]
    span when a tracer is attached via {!set_tracer}. *)
val send_train :
  ?trace:int * int ->
  t ->
  src:int ->
  dst:int ->
  Bytes.t ->
  on_delivered:(Bytes.t -> unit) ->
  on_failed:(reason:string -> unit) ->
  unit

(** {1 Heartbeats}

    Liveness beacons for the crash detector: one unacked, checksummed
    [HBEA] frame per call, routed through the same faulty network as
    everything else — a killed, crashed or partitioned sender produces
    none, which is exactly the signal the suspicion protocol keys on. *)

(** [send_heartbeat t ~src ~dst ~gen ~on_heard] fires one beacon carrying
    the sender id and its incarnation number [gen]; [on_heard ~src ~gen]
    runs at the destination iff the beacon survives the fault plan. No
    retransmission: a lost beacon is just a missed beat. *)
val send_heartbeat :
  t -> src:int -> dst:int -> gen:int -> on_heard:(src:int -> gen:int -> unit) -> unit

(** {1 Crash teardown} *)

(** [forget_node t ~node] discards the partial train assemblies held in
    [node]'s memory (a crash destroys them) and silently cancels every
    send session [node] originated — the dead incarnation's timers and
    continuations never fire, neither as delivery nor as failure.
    Sessions {e to} the dead node are untouched: their senders are alive
    and give up on their own schedule (or succeed after a restart).
    Returns how many sessions were torn down. *)
val forget_node : t -> node:int -> int

(** {1 Statistics} *)

val retransmits : t -> int

val duplicates_suppressed : t -> int

(** [link_dup_suppressed t ~src ~dst] — duplicates suppressed on the
    directed link [src → dst] (data copies, whole-train re-deliveries and
    per-fragment duplicates alike). Summing over all links yields
    {!duplicates_suppressed}. @raise Invalid_argument on an out-of-range
    node. *)
val link_dup_suppressed : t -> src:int -> dst:int -> int

val give_ups : t -> int

val trains_sent : t -> int

val train_retransmits : t -> int
(** Whole-train resends (also counted in {!retransmits}). *)
