module Obs = Pm2_obs
module Fault = Pm2_fault
module Engine = Pm2_sim.Engine

let data_magic = 0x52454C44 (* "RELD" *)

let ack_magic = 0x52454C41 (* "RELA" *)

type t = {
  net : Network.t;
  obs : Obs.Collector.t;
  max_attempts : int;
  mutable next_seq : int;
  (* seqs whose payload ran its delivery continuation (or whose session
     was torn down): any further copy is suppressed *)
  delivered : (int, unit) Hashtbl.t;
  (* seqs awaiting an ack -> sender-side completion *)
  pending : (int, unit -> unit) Hashtbl.t;
  mutable retransmits : int;
  mutable dups : int;
  mutable give_ups : int;
}

let create ?(obs = Obs.Collector.null) ?(max_attempts = 12) net =
  {
    net;
    obs;
    max_attempts;
    next_seq = 0;
    delivered = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    retransmits = 0;
    dups = 0;
    give_ups = 0;
  }

let network t = t.net

let retransmits t = t.retransmits

let duplicates_suppressed t = t.dups

let give_ups t = t.give_ups

(* Frames are [magic][checksum(inner)][inner]; the checksum covers the
   sequence number as well as the payload, so a bit-flip anywhere in the
   frame makes the receiver discard it (and retransmission recovers). *)
let frame ~magic inner =
  let p = Packet.packer () in
  Packet.pack_int p magic;
  Packet.pack_int p (Packet.checksum inner);
  Packet.pack_bytes p inner;
  Packet.contents p

let parse_frame b =
  match
    let u = Packet.unpacker b in
    let magic = Packet.unpack_int u in
    let ck = Packet.unpack_int u in
    let inner = Packet.unpack_bytes u in
    if Packet.remaining u <> 0 || Packet.checksum inner <> ck then None
    else Some (magic, inner)
  with
  | exception Invalid_argument _ -> None
  | v -> v

let data_frame ~seq payload =
  let p = Packet.packer () in
  Packet.pack_int p seq;
  Packet.pack_bytes p payload;
  frame ~magic:data_magic (Packet.contents p)

let ack_frame ~seq =
  let p = Packet.packer () in
  Packet.pack_int p seq;
  frame ~magic:ack_magic (Packet.contents p)

let handle_ack t b =
  match parse_frame b with
  | Some (magic, inner) when magic = ack_magic -> (
    match
      let u = Packet.unpacker inner in
      Packet.unpack_int u
    with
    | exception Invalid_argument _ -> ()
    | seq -> (
      match Hashtbl.find_opt t.pending seq with
      | Some complete -> complete ()
      | None -> () (* late or duplicate ack *)))
  | Some _ | None -> ()

let handle_data t ~src ~dst ~on_delivered b =
  match parse_frame b with
  | Some (magic, inner) when magic = data_magic -> (
    match
      let u = Packet.unpacker inner in
      let seq = Packet.unpack_int u in
      let payload = Packet.unpack_bytes u in
      (seq, payload)
    with
    | exception Invalid_argument _ -> ()
    | seq, payload ->
      (* Acknowledge every intact copy: earlier acks may have been lost. *)
      Network.send t.net ~src:dst ~dst:src (ack_frame ~seq) (handle_ack t);
      if Hashtbl.mem t.delivered seq then begin
        t.dups <- t.dups + 1;
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst (Obs.Event.Net_dup_suppress { src; dst; seq })
      end
      else begin
        Hashtbl.replace t.delivered seq ();
        on_delivered payload
      end)
  | Some _ | None -> () (* corrupt or foreign frame: retransmission covers it *)

let send t ~src ~dst payload ~on_delivered ~on_failed =
  let faults = Network.faults t.net in
  if (not (Fault.Plan.enabled faults)) || src = dst then
    (* Fault-free network (or loop-back): plain delivery, no header. *)
    Network.send t.net ~src ~dst payload on_delivered
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let wire = data_frame ~seq payload in
    let bytes = Bytes.length wire in
    let engine = Network.engine t.net in
    let acked = ref false in
    Hashtbl.replace t.pending seq (fun () ->
        acked := true;
        Hashtbl.remove t.pending seq);
    let rtt =
      Network.transfer_time t.net ~bytes
      +. Network.transfer_time t.net ~bytes:(Bytes.length (ack_frame ~seq:0))
    in
    (* Generous initial timeout: jittered copies routinely exceed the
       modelled RTT, and a spurious retransmit only costs a suppressed
       duplicate. *)
    let base_timeout = (2. *. rtt) +. 50. in
    let rec attempt n =
      if !acked then ()
      else if n > t.max_attempts then begin
        Hashtbl.remove t.pending seq;
        if Hashtbl.mem t.delivered seq then
          (* The data arrived but every ack was lost. The bounded-attempt
             session teardown is modelled as reliable, so this counts as
             delivered — crucially, never as a duplicate. *)
          ()
        else begin
          (* Poison the seq so a straggling copy still in flight cannot
             deliver after the failure continuation has run. *)
          Hashtbl.replace t.delivered seq ();
          t.give_ups <- t.give_ups + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Net_give_up { src; dst; seq; attempts = t.max_attempts });
          on_failed
            ~reason:
              (Printf.sprintf "no ack from node %d after %d attempts" dst t.max_attempts)
        end
      end
      else begin
        if n > 1 then begin
          t.retransmits <- t.retransmits + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Net_retransmit { src; dst; seq; attempt = n; bytes })
        end;
        Network.send t.net ~src ~dst wire (handle_data t ~src ~dst ~on_delivered);
        let timeout = base_timeout *. (2. ** float_of_int (min (n - 1) 6)) in
        Engine.schedule_after engine ~delay:timeout (fun () ->
            if not !acked then attempt (n + 1))
      end
    in
    attempt 1
  end
