module Obs = Pm2_obs
module Fault = Pm2_fault
module Engine = Pm2_sim.Engine

let data_magic = 0x52454C44 (* "RELD" *)

let ack_magic = 0x52454C41 (* "RELA" *)

let frag_magic = 0x52454C54 (* "RELT": one fragment of a packet train *)

let train_ack_magic = 0x52454C4B (* "RELK": whole-train acknowledgement *)

let heartbeat_magic = 0x48424541 (* "HBEA": one liveness beacon, unacked *)

(* Receiver-side reassembly of one in-flight train. [rx_ctx] is the
   causal-trace context carried by the fragments (if any); [rx_first] is
   the virtual arrival time of the first fragment — together they bound
   the destination-side [Train] span. [rx_dst] lets a node crash tear down
   its partial assemblies. *)
type train_rx = {
  frags : Bytes.t option array;
  mutable have : int;
  mutable rx_ctx : (int * int) option;
  rx_first : float;
  rx_dst : int;
}

type t = {
  net : Network.t;
  obs : Obs.Collector.t;
  max_attempts : int;
  backoff_cap : int;
  fragment : int;
  mutable next_seq : int;
  (* seqs whose payload ran its delivery continuation (or whose session
     was torn down): any further copy is suppressed *)
  delivered : (int, unit) Hashtbl.t;
  (* seqs awaiting an ack -> (sender node, sender-side completion) *)
  pending : (int, int * (unit -> unit)) Hashtbl.t;
  (* train ids fully assembled (or torn down): later fragments are dups *)
  trains_delivered : (int, unit) Hashtbl.t;
  train_rx : (int, train_rx) Hashtbl.t;
  train_pending : (int, int * (unit -> unit)) Hashtbl.t;
  mutable next_train : int;
  mutable retransmits : int;
  mutable dups : int;
  dup_suppressed : int array; (* per directed link, indexed src * nodes + dst *)
  mutable give_ups : int;
  mutable trains_sent : int;
  mutable train_retransmits : int;
  (* causal tracer for destination-side train spans (set by the cluster
     when tracing is on; stays [None] otherwise) *)
  mutable tracer : Obs.Span.t option;
  guard : Pm2_util.Domain_guard.t;
      (* sequence counters, dedup sets and in-flight session maps are
         plain hashtables owned by exactly one domain (the parallel
         scheduler's coordinator); the guard fails fast on any
         cross-domain touch *)
}

let create ?(obs = Obs.Collector.null) ?(max_attempts = 12) ?(backoff_cap = 6)
    ?(fragment = 16384) net =
  if fragment <= 0 then invalid_arg "Reliable.create: fragment must be positive";
  if max_attempts < 1 then invalid_arg "Reliable.create: max_attempts must be >= 1";
  if backoff_cap < 0 then invalid_arg "Reliable.create: backoff_cap must be >= 0";
  {
    net;
    obs;
    guard = Pm2_util.Domain_guard.create ~name:"Reliable";
    max_attempts;
    backoff_cap;
    fragment;
    next_seq = 0;
    delivered = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    trains_delivered = Hashtbl.create 16;
    train_rx = Hashtbl.create 8;
    train_pending = Hashtbl.create 8;
    next_train = 0;
    retransmits = 0;
    dups = 0;
    dup_suppressed = Array.make (Network.nodes net * Network.nodes net) 0;
    give_ups = 0;
    trains_sent = 0;
    train_retransmits = 0;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- Some tracer

let network t = t.net

let retransmits t = t.retransmits

let duplicates_suppressed t = t.dups

(* A duplicate is attributed to the directed link it arrived on, so tests
   can pin retransmission pressure to one sender/receiver pair. *)
let note_dup t ~src ~dst =
  t.dups <- t.dups + 1;
  t.dup_suppressed.((src * Network.nodes t.net) + dst) <-
    t.dup_suppressed.((src * Network.nodes t.net) + dst) + 1

let link_dup_suppressed t ~src ~dst =
  let n = Network.nodes t.net in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Reliable.link_dup_suppressed: node out of range";
  t.dup_suppressed.((src * n) + dst)

let give_ups t = t.give_ups

let trains_sent t = t.trains_sent

let train_retransmits t = t.train_retransmits

(* Frames are [magic][checksum(inner)][inner]; the checksum covers the
   sequence number as well as the payload, so a bit-flip anywhere in the
   frame makes the receiver discard it (and retransmission recovers). *)
let frame ~magic inner =
  let p = Packet.packer () in
  Packet.pack_int p magic;
  Packet.pack_int p (Packet.checksum inner);
  Packet.pack_bytes p inner;
  Packet.contents p

let parse_frame b =
  match
    let u = Packet.unpacker b in
    let magic = Packet.unpack_int u in
    let ck = Packet.unpack_int u in
    let inner = Packet.unpack_bytes u in
    if Packet.remaining u <> 0 || Packet.checksum inner <> ck then None
    else Some (magic, inner)
  with
  | exception Invalid_argument _ -> None
  | v -> v

let data_frame ~seq payload =
  let p = Packet.packer () in
  Packet.pack_int p seq;
  Packet.pack_bytes p payload;
  frame ~magic:data_magic (Packet.contents p)

let ack_frame ~seq =
  let p = Packet.packer () in
  Packet.pack_int p seq;
  frame ~magic:ack_magic (Packet.contents p)

let handle_ack t b =
  match parse_frame b with
  | Some (magic, inner) when magic = ack_magic -> (
    match
      let u = Packet.unpacker inner in
      Packet.unpack_int u
    with
    | exception Invalid_argument _ -> ()
    | seq -> (
      match Hashtbl.find_opt t.pending seq with
      | Some (_, complete) -> complete ()
      | None -> () (* late or duplicate ack *)))
  | Some _ | None -> ()

let handle_data t ~src ~dst ~on_delivered b =
  match parse_frame b with
  | Some (magic, inner) when magic = data_magic -> (
    match
      let u = Packet.unpacker inner in
      let seq = Packet.unpack_int u in
      let payload = Packet.unpack_bytes u in
      (seq, payload)
    with
    | exception Invalid_argument _ -> ()
    | seq, payload ->
      (* Acknowledge every intact copy: earlier acks may have been lost. *)
      Network.send t.net ~src:dst ~dst:src (ack_frame ~seq) (handle_ack t);
      if Hashtbl.mem t.delivered seq then begin
        note_dup t ~src ~dst;
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst (Obs.Event.Net_dup_suppress { src; dst; seq })
      end
      else begin
        Hashtbl.replace t.delivered seq ();
        on_delivered payload
      end)
  | Some _ | None -> () (* corrupt or foreign frame: retransmission covers it *)

let send t ~src ~dst payload ~on_delivered ~on_failed =
  Pm2_util.Domain_guard.check t.guard;
  let faults = Network.faults t.net in
  if (not (Fault.Plan.enabled faults)) || src = dst then
    (* Fault-free network (or loop-back): plain delivery, no header. *)
    Network.send t.net ~src ~dst payload on_delivered
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let wire = data_frame ~seq payload in
    let bytes = Bytes.length wire in
    let engine = Network.engine t.net in
    let acked = ref false in
    Hashtbl.replace t.pending seq
      ( src,
        fun () ->
          acked := true;
          Hashtbl.remove t.pending seq );
    let rtt =
      Network.transfer_time t.net ~bytes
      +. Network.transfer_time t.net ~bytes:(Bytes.length (ack_frame ~seq:0))
    in
    (* Generous initial timeout: jittered copies routinely exceed the
       modelled RTT, and a spurious retransmit only costs a suppressed
       duplicate. *)
    let base_timeout = (2. *. rtt) +. 50. in
    let rec attempt n =
      if !acked then ()
      else if n > t.max_attempts then begin
        Hashtbl.remove t.pending seq;
        if Hashtbl.mem t.delivered seq then
          (* The data arrived but every ack was lost. The bounded-attempt
             session teardown is modelled as reliable, so this counts as
             delivered — crucially, never as a duplicate. *)
          ()
        else begin
          (* Poison the seq so a straggling copy still in flight cannot
             deliver after the failure continuation has run. *)
          Hashtbl.replace t.delivered seq ();
          t.give_ups <- t.give_ups + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Net_give_up { src; dst; seq; attempts = t.max_attempts });
          on_failed
            ~reason:
              (Printf.sprintf "no ack from node %d after %d attempts" dst t.max_attempts)
        end
      end
      else begin
        if n > 1 then begin
          t.retransmits <- t.retransmits + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Net_retransmit { src; dst; seq; attempt = n; bytes })
        end;
        Network.send t.net ~src ~dst wire (handle_data t ~src ~dst ~on_delivered);
        let timeout =
          base_timeout *. (2. ** float_of_int (min (n - 1) t.backoff_cap))
        in
        Engine.schedule_after engine ~delay:timeout (fun () ->
            if not !acked then attempt (n + 1))
      end
    in
    attempt 1
  end

(* -- heartbeats --------------------------------------------------------- *)

(* One HBEA beacon: fire-and-forget through the faulty network (loss is
   fine — the suspicion protocol tolerates missed beats; what matters is
   that a dead or partitioned sender produces none at all). [gen] is the
   sender's incarnation number, so a restarted node is recognisably new. *)
let heartbeat_frame ~node ~gen =
  let p = Packet.packer () in
  Packet.pack_int p node;
  Packet.pack_int p gen;
  frame ~magic:heartbeat_magic (Packet.contents p)

let send_heartbeat t ~src ~dst ~gen ~on_heard =
  Pm2_util.Domain_guard.check t.guard;
  Network.send t.net ~src ~dst (heartbeat_frame ~node:src ~gen) (fun b ->
      match parse_frame b with
      | Some (magic, inner) when magic = heartbeat_magic -> (
        match
          let u = Packet.unpacker inner in
          let node = Packet.unpack_int u in
          let gen = Packet.unpack_int u in
          (node, gen)
        with
        | exception Invalid_argument _ -> ()
        | node, gen -> on_heard ~src:node ~gen)
      | Some _ | None -> () (* corrupt beacon: just a missed beat *))

(* -- crash teardown ----------------------------------------------------- *)

(* A node crash wipes its half-assembled trains (the fragments lived in
   the node's memory) and cancels every send session it originated: the
   retransmission timers and completion continuations belonged to the
   dead incarnation's protocol stack, so they are silenced — neither
   delivery nor failure ever fires. Sessions *to* the dead node are left
   alone: their senders are alive and give up on their own schedule
   (or succeed after a restart). Returns the number of sessions torn
   down (assemblies + cancelled sends). *)
let forget_node t ~node =
  Pm2_util.Domain_guard.check t.guard;
  let doomed =
    Hashtbl.fold
      (fun train rx acc -> if rx.rx_dst = node then train :: acc else acc)
      t.train_rx []
  in
  List.iter (Hashtbl.remove t.train_rx) doomed;
  let cancel pending =
    let mine =
      Hashtbl.fold
        (fun _ (src, complete) acc -> if src = node then complete :: acc else acc)
        pending []
    in
    List.iter (fun complete -> complete ()) mine;
    List.length mine
  in
  List.length doomed + cancel t.pending + cancel t.train_pending

(* -- packet trains ------------------------------------------------------ *)

(* Trace context travels as two trailing words after the length-prefixed
   payload slice — absent entirely when tracing is off, so untraced
   fragments keep their historic size (and transfer time). The receiver
   detects it by the 16 bytes left after the payload. *)
let frag_frame ?trace ~train ~idx ~nfrags payload ~pos ~len () =
  let p = Packet.packer () in
  Packet.pack_int p train;
  Packet.pack_int p idx;
  Packet.pack_int p nfrags;
  Packet.pack_raw p ~len (fun buf -> Buffer.add_subbytes buf payload pos len);
  (match trace with
   | None -> ()
   | Some (tid, parent) ->
     Packet.pack_int p tid;
     Packet.pack_int p parent);
  frame ~magic:frag_magic (Packet.contents p)

let train_ack_frame ~train =
  let p = Packet.packer () in
  Packet.pack_int p train;
  frame ~magic:train_ack_magic (Packet.contents p)

let handle_train_ack t b =
  match parse_frame b with
  | Some (magic, inner) when magic = train_ack_magic -> (
    match
      let u = Packet.unpacker inner in
      Packet.unpack_int u
    with
    | exception Invalid_argument _ -> ()
    | train -> (
      match Hashtbl.find_opt t.train_pending train with
      | Some (_, complete) -> complete ()
      | None -> () (* late or duplicate ack *)))
  | Some _ | None -> ()

let handle_frag t ~src ~dst ~on_delivered b =
  match parse_frame b with
  | Some (magic, inner) when magic = frag_magic -> (
    match
      let u = Packet.unpacker inner in
      let train = Packet.unpack_int u in
      let idx = Packet.unpack_int u in
      let nfrags = Packet.unpack_int u in
      let payload = Packet.unpack_bytes u in
      let ctx =
        if Packet.remaining u = 16 then begin
          let tid = Packet.unpack_int u in
          let parent = Packet.unpack_int u in
          Some (tid, parent)
        end
        else None
      in
      (train, idx, nfrags, payload, ctx)
    with
    | exception Invalid_argument _ -> ()
    | train, idx, nfrags, payload, ctx ->
      if nfrags <= 0 || idx < 0 || idx >= nfrags then ()
      else if Hashtbl.mem t.trains_delivered train then begin
        (* Whole train already assembled: dedup and re-ack (the earlier
           ack may have been lost). *)
        note_dup t ~src ~dst;
        if Obs.Collector.enabled t.obs then
          Obs.Collector.emit t.obs ~node:dst
            (Obs.Event.Net_dup_suppress { src; dst; seq = train });
        Network.send t.net ~src:dst ~dst:src (train_ack_frame ~train)
          (handle_train_ack t)
      end
      else begin
        let now = Engine.now (Network.engine t.net) in
        let fresh () =
          { frags = Array.make nfrags None; have = 0; rx_ctx = None;
            rx_first = now; rx_dst = dst }
        in
        let rx =
          match Hashtbl.find_opt t.train_rx train with
          | Some rx when Array.length rx.frags = nfrags -> rx
          | Some _ -> (* inconsistent geometry: treat as corrupt *) fresh ()
          | None ->
            let rx = fresh () in
            Hashtbl.replace t.train_rx train rx;
            rx
        in
        if rx.rx_ctx = None then rx.rx_ctx <- ctx;
        (match rx.frags.(idx) with
         | Some _ ->
           note_dup t ~src ~dst;
           if Obs.Collector.enabled t.obs then
             Obs.Collector.emit t.obs ~node:dst
               (Obs.Event.Net_dup_suppress { src; dst; seq = train })
         | None ->
           rx.frags.(idx) <- Some payload;
           rx.have <- rx.have + 1);
        if rx.have = nfrags then begin
          let buf = Buffer.create 1024 in
          Array.iter
            (function Some b -> Buffer.add_bytes buf b | None -> assert false)
            rx.frags;
          Hashtbl.remove t.train_rx train;
          Hashtbl.replace t.trains_delivered train ();
          Network.send t.net ~src:dst ~dst:src (train_ack_frame ~train)
            (handle_train_ack t);
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:dst (Obs.Event.Train_ack { src; dst; train });
          (* Destination-side train span: first fragment arrival to full
             assembly, parented through the fragments' trace context. *)
          (match t.tracer with
           | Some tracer ->
             let span =
               Obs.Span.remote tracer ~at:rx.rx_first ~node:dst ~ctx:rx.rx_ctx
                 Obs.Event.Train
             in
             Obs.Span.finish tracer ~at:now
               ~note:(Printf.sprintf "train=%d frags=%d" train nfrags)
               span
           | None -> ());
          on_delivered (Buffer.to_bytes buf)
        end
      end)
  | Some _ | None -> () (* corrupt or foreign frame: retransmission covers it *)

let send_train ?trace t ~src ~dst payload ~on_delivered ~on_failed =
  Pm2_util.Domain_guard.check t.guard;
  let faults = Network.faults t.net in
  let bytes = Bytes.length payload in
  let train = t.next_train in
  t.next_train <- train + 1;
  t.trains_sent <- t.trains_sent + 1;
  if (not (Fault.Plan.enabled faults)) || src = dst then begin
    (* Fault-free network (or loop-back): the train degenerates to one
       plain message — no fragment headers, no acks, no timers. The
       payload (a codec frame) carries its own trace context, so no
       fragment metadata is needed here. *)
    if Obs.Collector.enabled t.obs then
      Obs.Collector.emit t.obs ~node:src
        (Obs.Event.Train_send { src; dst; train; frags = 1; bytes });
    Network.send t.net ~src ~dst payload on_delivered
  end
  else begin
    let nfrags = max 1 ((bytes + t.fragment - 1) / t.fragment) in
    let frames =
      List.init nfrags (fun idx ->
          let pos = idx * t.fragment in
          let len = min t.fragment (bytes - pos) in
          frag_frame ?trace ~train ~idx ~nfrags payload ~pos ~len ())
    in
    let wire_bytes = List.fold_left (fun acc f -> acc + Bytes.length f) 0 frames in
    let engine = Network.engine t.net in
    let acked = ref false in
    Hashtbl.replace t.train_pending train
      ( src,
        fun () ->
          acked := true;
          Hashtbl.remove t.train_pending train );
    let rtt =
      Network.transfer_time t.net ~bytes:wire_bytes
      +. Network.transfer_time t.net ~bytes:(Bytes.length (train_ack_frame ~train:0))
    in
    let base_timeout = (2. *. rtt) +. 50. in
    if Obs.Collector.enabled t.obs then
      Obs.Collector.emit t.obs ~node:src
        (Obs.Event.Train_send { src; dst; train; frags = nfrags; bytes });
    let rec attempt n =
      if !acked then ()
      else if n > t.max_attempts then begin
        Hashtbl.remove t.train_pending train;
        if Hashtbl.mem t.trains_delivered train then
          (* Assembled at the destination but every ack was lost: counts
             as delivered (teardown modelled as reliable), never as a
             duplicate delivery. *)
          ()
        else begin
          (* Poison the train id so straggling fragments cannot assemble
             and deliver after the failure continuation has run. *)
          Hashtbl.replace t.trains_delivered train ();
          Hashtbl.remove t.train_rx train;
          t.give_ups <- t.give_ups + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Net_give_up { src; dst; seq = train; attempts = t.max_attempts });
          on_failed
            ~reason:
              (Printf.sprintf "train %d: no ack from node %d after %d attempts" train
                 dst t.max_attempts)
        end
      end
      else begin
        if n > 1 then begin
          t.retransmits <- t.retransmits + 1;
          t.train_retransmits <- t.train_retransmits + 1;
          if Obs.Collector.enabled t.obs then
            Obs.Collector.emit t.obs ~node:src
              (Obs.Event.Train_retransmit
                 { src; dst; train; attempt = n; bytes = wire_bytes })
        end;
        (* The receiver drops fragments it already holds, so a full-train
           resend costs only suppressed duplicates. *)
        List.iter
          (fun f -> Network.send t.net ~src ~dst f (handle_frag t ~src ~dst ~on_delivered))
          frames;
        let timeout =
          base_timeout *. (2. ** float_of_int (min (n - 1) t.backoff_cap))
        in
        Engine.schedule_after engine ~delay:timeout (fun () ->
            if not !acked then attempt (n + 1))
      end
    in
    attempt 1
  end
