(** Versioned migration wire codec.

    PM2's original migration message (v1) ships every used byte of every
    slot. The v2 codec, used by the group-migration train, frames its
    payload with an explicit version header and encodes each slot as a
    {e page manifest} plus the raw bytes of only the pages that hold
    data. Untouched and all-zero pages are {e described, not shipped}:
    the destination recreates them for free because
    {!Pm2_vmem.Address_space.mmap} zero-fills (zero-page elision).

    The v3 codec extends the manifest with a third page class, [Cached]:
    a page whose 62-bit content hash matches what the destination is
    believed to retain from a previous hop of the same thread is shipped
    as its hash alone, and the destination reconstructs it from its
    residual image cache — delta migration.

    Frame layout (all fixed fields 8-byte LE words):
    {v
      +--------+---------+-----------------+---------------------+
      | "PM2C" | version |  payload length |   payload bytes...  |
      +--------+---------+-----------------+---------------------+
    v}

    A buffer that does not start with the ["PM2C"] magic is treated as a
    bare v1 payload, so pre-codec wire images (and the single-thread
    migration path, which still emits them) remain decodable.

    Range encoding (inside a v2 payload), per slot:
    {v
      varint run_count
      run_count x varint (pages << 1 | data?)     RLE page manifest
      raw page bytes of every data run, in order  (no per-page framing)
    v}

    Range encoding (inside a v3 payload), per slot:
    {v
      varint run_count
      run_count x [ varint (pages << 2 | class)   class: 0=Zero 1=Data 2=Cached
                    if class = Cached:
                      pages x 8-byte LE content hash ]
      raw page bytes of every Data run, in order  (no per-page framing)
    v}

    Varints are zigzag LEB128 ({!Packet.pack_varint}). *)

(** Wire format generations. [V1] is the original full-copy encoding;
    [V2] adds the page manifest with zero-page elision; [V3] adds the
    [Cached] page class for delta transfers. *)
type version = V1 | V2 | V3

val version_name : version -> string
(** ["v1"] / ["v2"] / ["v3"], for logs and error messages. *)

(** [frame ?trace version payload] wraps [payload] in a versioned frame.
    [trace] is a [(trace id, parent span id)] causal-trace context:
    when present, a flag bit is set in the version word and the two ids
    travel as extra words between the version and the payload. Without
    [trace] the frame is byte-for-byte the historic layout, so
    tracing-off runs put exactly the same bytes on the wire. *)
val frame : ?trace:int * int -> version -> Bytes.t -> Bytes.t

(** [parse buf] splits a frame into its version and payload. Buffers
    without the frame magic parse as [(V1, buf)] — backwards
    compatibility with bare legacy migration images. Errors on unknown
    versions, truncation and trailing garbage. *)
val parse : Bytes.t -> (version * Bytes.t, string) result

(** Typed decode errors. Fault-injected corruption must surface as a
    value the protocol layer can act on (nack, rollback, resend), never
    as an exception escaping the codec. *)
type error =
  | Bad_version of int  (** frame header names a version we don't speak *)
  | Bad_manifest of string  (** structurally invalid manifest or payload *)

val error_to_string : error -> string

(** [decode buf] is {!parse} with typed errors. *)
val decode : Bytes.t -> (version * Bytes.t, error) result

(** [decode_traced buf] is {!decode} plus the frame's trace context (if
    the trace flag is set) — what the destination parents its spans
    through. Bare v1 buffers and untraced frames yield [None]. *)
val decode_traced : Bytes.t -> (version * (int * int) option * Bytes.t, error) result

(** One v2 manifest entry: [pages] consecutive pages that either all
    carry data ([data = true], shipped verbatim) or are all zero
    ([data = false], elided). *)
type run = {
  data : bool;
  pages : int;
}

(** [manifest space ~addr ~size] classifies the page-aligned range into
    maximal data/zero runs by content ({!Pm2_vmem.Address_space.page_is_zero}
    — clean pages classify without being read).
    @raise Invalid_argument if [size] is not a positive multiple of the
    page size. *)
val manifest : Pm2_vmem.Address_space.t -> addr:int -> size:int -> run list

(** [encode_range p space ~addr ~size] appends the manifest and the data
    pages of the range to [p]; returns [(data_pages, zero_pages)]. *)
val encode_range :
  Packet.packer -> Pm2_vmem.Address_space.t -> addr:int -> size:int -> int * int

(** [decode_range u space ~addr ~size] reads one {!encode_range} image
    and stores the data pages into [space], which must already have the
    whole range freshly mapped (zero runs are left untouched). Returns
    the number of data pages stored.
    @raise Invalid_argument if the manifest does not cover [size] or the
    buffer is truncated. *)
val decode_range :
  Packet.unpacker -> Pm2_vmem.Address_space.t -> addr:int -> size:int -> int

(** [try_decode_range] is {!decode_range} with corruption reported as
    [Error (Bad_manifest _)] instead of an exception. *)
val try_decode_range :
  Packet.unpacker ->
  Pm2_vmem.Address_space.t ->
  addr:int ->
  size:int ->
  (int, error) result

(** {1 v3 delta manifests} *)

(** Per-page classification of a v3 slot image. *)
type page_class =
  | Zero  (** all-zero; recreated by mapping alone *)
  | Data  (** shipped verbatim *)
  | Cached of int
      (** content hash matches the destination's believed residual copy;
          only the hash travels *)

(** [delta_manifest space ~addr ~size ~known] classifies each page of the
    range: all-zero pages are [Zero]; a page whose
    {!Pm2_vmem.Address_space.page_hash} equals [known addr] is
    [Cached hash]; everything else is [Data]. [known] is the sender's
    knowledge of what the destination retains for this thread (page
    address → hash), typically from the delta cache.
    @raise Invalid_argument if [size] is not a positive multiple of the
    page size. *)
val delta_manifest :
  Pm2_vmem.Address_space.t ->
  addr:int ->
  size:int ->
  known:(int -> int option) ->
  page_class list

(** [encode_delta_range p space ~addr ~size ~known] appends the v3
    manifest (with inline hashes for [Cached] runs) and the raw bytes of
    the [Data] runs to [p]; returns
    [(data_pages, zero_pages, cached_pages)]. *)
val encode_delta_range :
  Packet.packer ->
  Pm2_vmem.Address_space.t ->
  addr:int ->
  size:int ->
  known:(int -> int option) ->
  int * int * int

(** [decode_delta_range u space ~addr ~size ~restore] reads one
    {!encode_delta_range} image into [space] (whole range freshly
    mapped). For each [Cached] page it calls
    [restore ~addr ~hash]; the callback must blit the retained page at
    [addr] and return [true] only if its content hash matches [hash].
    Pages whose restore fails are collected (in address order) into the
    returned missing list [(addr, hash)] for the caller to fetch via the
    full-resend fallback. Returns [(data_pages, missing)].
    @raise Invalid_argument if the manifest is structurally invalid. *)
val decode_delta_range :
  Packet.unpacker ->
  Pm2_vmem.Address_space.t ->
  addr:int ->
  size:int ->
  restore:(addr:int -> hash:int -> bool) ->
  int * (int * int) list

(** [try_decode_delta_range] is {!decode_delta_range} with corruption
    reported as [Error (Bad_manifest _)] instead of an exception. *)
val try_decode_delta_range :
  Packet.unpacker ->
  Pm2_vmem.Address_space.t ->
  addr:int ->
  size:int ->
  restore:(addr:int -> hash:int -> bool) ->
  (int * (int * int) list, error) result
