(** Versioned migration wire codec.

    PM2's original migration message (v1) ships every used byte of every
    slot. The v2 codec, used by the group-migration train, frames its
    payload with an explicit version header and encodes each slot as a
    {e page manifest} plus the raw bytes of only the pages that hold
    data. Untouched and all-zero pages are {e described, not shipped}:
    the destination recreates them for free because
    {!Pm2_vmem.Address_space.mmap} zero-fills (zero-page elision).

    Frame layout (all fixed fields 8-byte LE words):
    {v
      +--------+---------+-----------------+---------------------+
      | "PM2C" | version |  payload length |   payload bytes...  |
      +--------+---------+-----------------+---------------------+
    v}

    A buffer that does not start with the ["PM2C"] magic is treated as a
    bare v1 payload, so pre-codec wire images (and the single-thread
    migration path, which still emits them) remain decodable.

    Range encoding (inside a v2 payload), per slot:
    {v
      varint run_count
      run_count x varint (pages << 1 | data?)     RLE page manifest
      raw page bytes of every data run, in order  (no per-page framing)
    v}

    Varints are zigzag LEB128 ({!Packet.pack_varint}). *)

(** Wire format generations. [V1] is the original full-copy encoding;
    [V2] adds the page manifest with zero-page elision. *)
type version = V1 | V2

(** [frame version payload] wraps [payload] in a versioned frame. *)
val frame : version -> Bytes.t -> Bytes.t

(** [parse buf] splits a frame into its version and payload. Buffers
    without the frame magic parse as [(V1, buf)] — backwards
    compatibility with bare legacy migration images. Errors on unknown
    versions, truncation and trailing garbage. *)
val parse : Bytes.t -> (version * Bytes.t, string) result

(** One manifest entry: [pages] consecutive pages that either all carry
    data ([data = true], shipped verbatim) or are all zero
    ([data = false], elided). *)
type run = {
  data : bool;
  pages : int;
}

(** [manifest space ~addr ~size] classifies the page-aligned range into
    maximal data/zero runs by content ({!Pm2_vmem.Address_space.page_is_zero}
    — clean pages classify without being read).
    @raise Invalid_argument if [size] is not a positive multiple of the
    page size. *)
val manifest : Pm2_vmem.Address_space.t -> addr:int -> size:int -> run list

(** [encode_range p space ~addr ~size] appends the manifest and the data
    pages of the range to [p]; returns [(data_pages, zero_pages)]. *)
val encode_range :
  Packet.packer -> Pm2_vmem.Address_space.t -> addr:int -> size:int -> int * int

(** [decode_range u space ~addr ~size] reads one {!encode_range} image
    and stores the data pages into [space], which must already have the
    whole range freshly mapped (zero runs are left untouched). Returns
    the number of data pages stored.
    @raise Invalid_argument if the manifest does not cover [size] or the
    buffer is truncated. *)
val decode_range :
  Packet.unpacker -> Pm2_vmem.Address_space.t -> addr:int -> size:int -> int
