module Engine = Pm2_sim.Engine
module Cluster = Pm2_core.Cluster
module Thread = Pm2_core.Thread
module Obs = Pm2_obs

type policy =
  | Threshold of { high : int; low : int }
  | Group_threshold of { high : int; low : int; limit : int }
  | Least_loaded
  | Round_robin_spread
  | Cache_affinity
  | Access_imbalance of { ratio : float; min_pages : int }

type stats = {
  mutable decisions : int;
  mutable migrations_requested : int;
  mutable groups_requested : int;
  mutable retries : int;
}

type t = {
  cluster : Cluster.t;
  policy : policy;
  period : float;
  stats : stats;
}

let policy_to_string = function
  | Threshold { high; low } -> Printf.sprintf "threshold(high=%d,low=%d)" high low
  | Group_threshold { high; low; limit } ->
    Printf.sprintf "group-threshold(high=%d,low=%d,limit=%d)" high low limit
  | Least_loaded -> "least-loaded"
  | Round_robin_spread -> "round-robin-spread"
  | Cache_affinity -> "cache-affinity"
  | Access_imbalance { ratio; min_pages } ->
    Printf.sprintf "access-imbalance(ratio=%g,min_pages=%d)" ratio min_pages

module Policy = struct
  type nonrec t = policy

  let grammar =
    "least-loaded, spread, cache-affinity, threshold:HIGH:LOW, \
     group-threshold:HIGH:LOW:LIMIT, access-imbalance[:RATIO:MINPAGES]"

  (* [%.12g] without trailing zeros, same discipline as the fault-spec
     grammar: the canonical form of a parsed policy parses back to the
     same policy. *)
  let fstr v = Printf.sprintf "%.12g" v

  let to_string = function
    | Least_loaded -> "least-loaded"
    | Round_robin_spread -> "spread"
    | Cache_affinity -> "cache-affinity"
    | Threshold { high; low } -> Printf.sprintf "threshold:%d:%d" high low
    | Group_threshold { high; low; limit } ->
      Printf.sprintf "group-threshold:%d:%d:%d" high low limit
    | Access_imbalance { ratio; min_pages } ->
      Printf.sprintf "access-imbalance:%s:%d" (fstr ratio) min_pages

  let int_field key v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: not an integer: %s" key v)

  let float_field key v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "%s: not a number: %s" key v)

  let ( let* ) = Result.bind

  let of_string s =
    match String.split_on_char ':' s with
    | [ "least-loaded" ] -> Ok Least_loaded
    | [ "spread" ] -> Ok Round_robin_spread
    | [ "cache-affinity" ] -> Ok Cache_affinity
    | [ "threshold"; hi; lo ] ->
      let* high = int_field "threshold" hi in
      let* low = int_field "threshold" lo in
      Ok (Threshold { high; low })
    | [ "group-threshold"; hi; lo; lim ] ->
      let* high = int_field "group-threshold" hi in
      let* low = int_field "group-threshold" lo in
      let* limit = int_field "group-threshold" lim in
      Ok (Group_threshold { high; low; limit })
    | [ "access-imbalance" ] -> Ok (Access_imbalance { ratio = 2.; min_pages = 1 })
    | [ "access-imbalance"; r; mp ] ->
      let* ratio = float_field "access-imbalance" r in
      let* min_pages = int_field "access-imbalance" mp in
      Ok (Access_imbalance { ratio; min_pages })
    | _ -> Error (Printf.sprintf "unknown policy %S (valid: %s)" s grammar)
end

let loads cluster =
  Array.init (Cluster.node_count cluster) (fun i -> Cluster.node_load cluster i)

let imbalance cluster =
  let l = loads cluster in
  Array.fold_left max 0 l - Array.fold_left min max_int l

(* A node whose interface is down (fault plan) is invisible to the
   balancer: its threads keep running locally, but nothing can migrate in
   or out, so it is neither a source nor a destination. *)
let alive cluster =
  Array.init (Cluster.node_count cluster) (fun i -> Cluster.node_alive cluster i)

(* Index of the max/min load among alive nodes; [None] if none qualify. *)
let argmax_alive a ok =
  let best = ref (-1) in
  Array.iteri (fun i v -> if ok.(i) && (!best < 0 || v > a.(!best)) then best := i) a;
  if !best < 0 then None else Some !best

let argmin_alive a ok =
  let best = ref (-1) in
  Array.iteri (fun i v -> if ok.(i) && (!best < 0 || v < a.(!best)) then best := i) a;
  if !best < 0 then None else Some !best

(* Runnable threads currently placed on [node] (ready in its queue). *)
let movable_threads cluster node =
  List.filter
    (fun (th : Thread.t) ->
       th.Thread.node = node
       && th.Thread.state = Thread.Ready
       && th.Thread.pending_migration = None)
    (Cluster.threads cluster)

let request t th ~dest =
  Cluster.request_migration t.cluster th ~dest;
  t.stats.migrations_requested <- t.stats.migrations_requested + 1

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* Shed up to [n] threads from [src] to [dst] as ONE group migration: a
   single negotiation and a single packet train instead of [n] handshakes
   (the batching the v2 wire codec exists for). Returns how many threads
   were actually committed to the group. *)
let request_group t ~src ~dst n =
  let members = take n (movable_threads t.cluster src) in
  match members with
  | [] -> 0
  | members ->
    (match Cluster.migrate_group t.cluster members ~dest:dst with
     | Ok _gid ->
       let n = List.length members in
       t.stats.groups_requested <- t.stats.groups_requested + 1;
       t.stats.migrations_requested <- t.stats.migrations_requested + n;
       n
     | Error _ -> 0)

(* One balancing round; [true] if at least one migration was requested. *)
let balance_once t =
  let l = loads t.cluster in
  let ok = alive t.cluster in
  let nodes = Array.length l in
  if nodes < 2 then false
  else begin
    let requested = ref 0 in
    (match t.policy with
     | Threshold { high; low } ->
       Array.iteri
         (fun src load ->
            if ok.(src) && load > high then begin
              let excess = ref (load - high) in
              let victims = movable_threads t.cluster src in
              List.iter
                (fun th ->
                   if !excess > 0 then
                     match argmin_alive l ok with
                     | Some dst when dst <> src && l.(dst) < low ->
                       request t th ~dest:dst;
                       l.(dst) <- l.(dst) + 1;
                       l.(src) <- l.(src) - 1;
                       decr excess;
                       incr requested
                     | _ -> ())
                victims
            end)
         l
     | Group_threshold { high; low; limit } ->
       Array.iteri
         (fun src load ->
            if ok.(src) && load > high then
              match argmin_alive l ok with
              | Some dst when dst <> src && l.(dst) < low ->
                let want = min (load - high) (max 1 limit) in
                let moved = request_group t ~src ~dst want in
                l.(dst) <- l.(dst) + moved;
                l.(src) <- l.(src) - moved;
                requested := !requested + moved
              | _ -> ())
         l
     | Least_loaded ->
       (match argmax_alive l ok, argmin_alive l ok with
        | Some src, Some dst when src <> dst && l.(src) - l.(dst) > 1 ->
          (match movable_threads t.cluster src with
           | th :: _ ->
             request t th ~dest:dst;
             incr requested
           | [] -> ())
        | _ -> ())
     | Round_robin_spread ->
       (match argmax_alive l ok with
        | Some src when l.(src) > 1 ->
          let victims = movable_threads t.cluster src in
          List.iteri
            (fun i th ->
               let dst = i mod nodes in
               if dst <> src && ok.(dst) then begin
                 request t th ~dest:dst;
                 incr requested
               end)
            victims
        | _ -> ())
     | Cache_affinity ->
       (* Like [Least_loaded], but when several destinations are nearly as
          idle as the minimum, prefer one already holding a residual image
          of the chosen thread: migrating there ships hashes instead of
          pages (see {!Pm2_core.Cluster.delta_affinity}). Falls back to
          plain least-loaded when delta migration is off. *)
       (match argmax_alive l ok with
        | Some src ->
          (match movable_threads t.cluster src with
           | th :: _ ->
             (match argmin_alive l ok with
              | Some min_dst ->
                let best = ref (-1) in
                Array.iteri
                  (fun dst load ->
                     if
                       ok.(dst) && dst <> src
                       && l.(src) - load > 1
                       && load <= l.(min_dst) + 1
                     then
                       match !best with
                       | -1 -> best := dst
                       | b ->
                         let aff d = Cluster.delta_affinity t.cluster th ~dest:d in
                         if
                           (aff dst && not (aff b))
                           || (aff dst = aff b && load < l.(b))
                         then best := dst)
                  l;
                (match !best with
                 | -1 -> ()
                 | dst ->
                   request t th ~dest:dst;
                   incr requested)
              | None -> ())
           | [] -> ())
        | None -> ())
     | Access_imbalance { ratio; min_pages } ->
       (* Telemetry-driven placement: balance write bandwidth, not run-queue
          length. The cluster's heat feed (pages stored per observation
          window, from the dirty-epoch bookkeeping the migration codec
          already pays for) names the hottest node; when its heat exceeds
          [ratio] times the coldest node's, the single hottest thread moves
          there. [min_pages] ignores threads too cold to matter — moving
          them would churn without shifting any bandwidth. *)
       Cluster.refresh_heat t.cluster;
       let feed = Cluster.feed t.cluster in
       let node_heat i = Obs.Feed.get_or feed (Obs.Feed.node_heat_key i) ~default:0. in
       let heats = Array.init nodes node_heat in
       (match argmax_alive heats ok, argmin_alive heats ok with
        | Some hot, Some cold
          when hot <> cold && heats.(hot) >= ratio *. Float.max 1. heats.(cold) ->
          let thread_heat (th : Thread.t) =
            Obs.Feed.get_or feed (Obs.Feed.thread_heat_key th.Thread.id) ~default:0.
          in
          let victim =
            List.fold_left
              (fun best th ->
                match best with
                | Some b when thread_heat b >= thread_heat th -> best
                | _ -> Some th)
              None
              (movable_threads t.cluster hot)
          in
          (match victim with
           | Some th when thread_heat th >= float_of_int min_pages ->
             request t th ~dest:cold;
             incr requested
           | _ -> ())
        | _ -> ()));
    if !requested > 0 then t.stats.decisions <- t.stats.decisions + 1;
    !requested > 0
  end

(* An aborted migration (destination rejected, died, or the transfer was
   undeliverable) hands the thread back: retry it on the next-best alive
   node — excluding the failed one and its own — if that still improves
   the balance. *)
let retry_elsewhere t (th : Thread.t) ~failed =
  let l = loads t.cluster in
  let ok = alive t.cluster in
  let src = th.Thread.node in
  if failed >= 0 && failed < Array.length ok then ok.(failed) <- false;
  if src >= 0 && src < Array.length ok then ok.(src) <- false;
  match argmin_alive l ok with
  | Some dst when l.(dst) + 1 < l.(src) ->
    request t th ~dest:dst;
    t.stats.retries <- t.stats.retries + 1
  | _ -> ()

let attach cluster ~policy ~period =
  if period <= 0. then invalid_arg "Balancer.attach: period <= 0";
  let t =
    {
      cluster;
      policy;
      period;
      stats =
        { decisions = 0; migrations_requested = 0; groups_requested = 0; retries = 0 };
    }
  in
  Cluster.set_migration_abort_handler cluster (fun th ~failed ->
      retry_elsewhere t th ~failed);
  let engine = Cluster.engine cluster in
  let rec wake () =
    if Cluster.live_threads cluster > 0 then begin
      ignore (balance_once t);
      Engine.schedule_after engine ~delay:period wake
    end
  in
  Engine.schedule_after engine ~delay:period wake;
  t

let stats t = t.stats
