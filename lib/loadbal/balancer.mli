(** Dynamic load balancing on top of preemptive migration.

    The paper's motivation (§1–2): "a generic module implemented outside
    the running application could balance the load by migrating the
    application threads. The threads are unaware of their being migrated."
    This module is that generic module: it periodically observes each
    node's run-queue length and, according to a policy, requests preemptive
    migrations of runnable threads from overloaded to underloaded nodes —
    exercising exactly the transparency property the iso-address scheme
    provides. *)

type policy =
  | Threshold of { high : int; low : int }
      (* a node with load > high sheds threads to the least-loaded node
         while that node's load < low *)
  | Group_threshold of { high : int; low : int; limit : int }
      (* like [Threshold], but sheds up to [limit] threads per round as ONE
         {!Pm2_core.Cluster.migrate_group} batch: a single negotiation and
         a single packet train instead of one handshake per thread *)
  | Least_loaded
      (* move one thread per period from the most- to the least-loaded
         node when the spread exceeds 1 *)
  | Round_robin_spread
      (* spread the threads of the most-loaded node round-robin (the
         static policy of naive runtimes; kept as a baseline) *)
  | Cache_affinity
      (* [Least_loaded] with a delta-migration placement hint: among
         destinations within one thread of the minimum load, prefer one
         that already holds a residual image of the migrating thread
         ({!Pm2_core.Cluster.delta_affinity}), so the move ships content
         hashes instead of pages. Identical to least-loaded when delta
         migration is disabled. *)
  | Access_imbalance of { ratio : float; min_pages : int }
      (* telemetry-driven placement: each period the balancer refreshes
         the cluster's access-heat feed ({!Pm2_core.Cluster.refresh_heat}
         — pages stored per thread during the last observation window)
         and, when the hottest node's heat is at least [ratio] times the
         coldest's, moves the single hottest thread there. Threads below
         [min_pages] of heat never move. Balances write bandwidth rather
         than run-queue length — the two disagree exactly on skewed-access
         workloads, where a few threads do most of the writing. *)

(** The typed policy-specification API shared by every front end — the
    pm2sim CLI, the pm2simd daemon and the [pm2-ctl/1] wire protocol all
    parse and print policies through this one grammar:

    {v
    least-loaded | spread | cache-affinity
    | threshold:HIGH:LOW
    | group-threshold:HIGH:LOW:LIMIT
    | access-imbalance[:RATIO:MINPAGES]   (defaults 2:1)
    v}

    [of_string (to_string p) = Ok p] for every policy; parse errors list
    the valid policies. ({!policy_to_string} below remains the
    human-readable display form used in reports.) *)
module Policy : sig
  type nonrec t = policy

  val of_string : string -> (t, string) result

  (** Canonical rendering of the grammar above; round-trips through
      {!of_string}. *)
  val to_string : t -> string

  (** One-line list of the valid policy forms (the text parse errors
      embed). *)
  val grammar : string
end

type stats = {
  mutable decisions : int; (* balancing rounds that migrated something *)
  mutable migrations_requested : int;
  mutable groups_requested : int; (* group migrations issued (Group_threshold) *)
  mutable retries : int;
      (* aborted migrations re-requested towards another node *)
}

type t

(** [attach cluster ~policy ~period] installs a balancer that wakes every
    [period] virtual µs while the cluster has live threads. Returns the
    balancer handle (for stats).

    Fault awareness: nodes whose interface is down (see
    {!Pm2_core.Cluster.node_alive}) are excluded as both sources and
    destinations, and the balancer registers itself as the cluster's
    migration-abort handler — a migration that fails mid-flight is retried
    towards the next-best alive node when that still improves balance. *)
val attach : Pm2_core.Cluster.t -> policy:policy -> period:float -> t

val stats : t -> stats

val policy_to_string : policy -> string

(** [imbalance cluster] is [max load - min load] across nodes, a simple
    scalar the experiments report. *)
val imbalance : Pm2_core.Cluster.t -> int
