(** A simulated per-node virtual address space.

    Pages are materialised lazily: [mmap] declares a range mapped (and
    zero-filled), [munmap] unmaps it, and any access to an unmapped address
    raises {!Segfault} — exactly the failure mode of the paper's Figs. 2, 4
    and 9 when a migrated thread dereferences a pointer whose target did not
    follow it.

    All multi-byte accessors are little-endian. Words are 8 bytes: the
    MiniVM is a 64-bit machine, and all isomalloc headers are stored as
    words {e inside} this memory so that they are carried verbatim by an
    iso-address copy (paper, §4.2: slot chaining pointers live in the slot
    headers and stay valid after migration). *)

type t

type addr = Layout.addr

exception Segfault of { addr : addr; node : int; what : string }

val word_size : int
(** 8 bytes. *)

(** [create ~node ()] is an empty address space; [node] tags segfault
    reports. *)
val create : node:int -> unit -> t

val node : t -> int

(** {1 Mapping} *)

(** [mmap t ~addr ~size] maps (and zero-fills) the page-aligned range.
    @raise Invalid_argument if the range is not page aligned or any page in
    it is already mapped (MAP_FIXED without overwrite — the iso-address
    discipline must guarantee this never happens across nodes). *)
val mmap : t -> addr:addr -> size:int -> unit

(** [munmap t ~addr ~size] unmaps the range.
    @raise Invalid_argument if not page aligned or any page is not mapped. *)
val munmap : t -> addr:addr -> size:int -> unit

val is_mapped : t -> addr -> bool

(** [range_mapped t ~addr ~size] is [true] iff every byte of the range is
    mapped. *)
val range_mapped : t -> addr:addr -> size:int -> bool

(** [range_unmapped t ~addr ~size] is [true] iff no page of the range is
    mapped — the test a migration destination runs before accepting a
    thread (two-phase protocol): [mmap] at those addresses will succeed. *)
val range_unmapped : t -> addr:addr -> size:int -> bool

(** [scrub_range t ~addr ~size] unmaps whatever pages of the range happen
    to be mapped and returns how many were dropped. Unlike {!munmap} it
    tolerates holes: it is the cleanup path after a partially applied
    migration unpack is abandoned. *)
val scrub_range : t -> addr:addr -> size:int -> int

val mapped_pages : t -> int
(** Resident page count. *)

val mmap_calls : t -> int
(** Number of [mmap] invocations so far (feeds the cost model). *)

(** {1 Dirty / zero-page tracking}

    The v2 migration codec ({!Pm2_net.Codec}-style group transfers) ships
    only pages that actually hold data and {e describes} the rest: since
    {!mmap} zero-fills, an untouched page is all-zero by construction and
    can be recreated at the destination by mapping alone. *)

val page_dirty : t -> addr -> bool
(** [page_dirty t a] is [true] iff some store touched the page containing
    [a] since it was mapped. Cheap (hash probe); never faults. *)

(** {2 Access epochs}

    Placement telemetry: {!advance_epoch} opens a new observation window
    and {!dirty_in_epoch} counts the pages of a range last stored to
    inside the current window. The balancer derives per-thread "heat"
    from these counts — no extra bookkeeping rides the store fast path,
    the epoch stamp reuses the dirty-page table the v2 codec already
    maintains. *)

val advance_epoch : t -> unit
(** Open a new observation window. Stores from now on stamp the new
    epoch; earlier stores no longer count as current-window heat. *)

val epoch : t -> int
(** The current observation window (0 before the first
    {!advance_epoch} — heat reads 0 in that pre-history window). *)

val dirty_in_epoch : t -> addr:addr -> size:int -> int
(** [dirty_in_epoch t ~addr ~size] — how many pages of the range were
    last stored to in the current window. Never faults; unmapped pages
    count 0. *)

val page_is_zero : t -> addr -> bool
(** [page_is_zero t a] is [true] iff the mapped page containing [a] is
    currently all-zero. Clean pages answer without reading memory; dirty
    pages are scanned word-wise (a store of zeros is re-detected as zero,
    so the manifest stays content-accurate, not merely
    history-accurate). @raise Segfault if the page is unmapped. *)

(** {1 Page content hashing (delta migration)}

    The v3 delta codec classifies pages by a 62-bit content hash
    (FNV-1a 64 over the page's 8-byte words, splitmix-mixed, folded to a
    non-negative OCaml int). Hashes are memoized per page and the memo is
    invalidated through the dirty-epoch store path, so re-hashing an
    untouched page is a hash-table probe, never a page scan. *)

val page_hash : t -> addr -> int
(** [page_hash t a] is the content hash of the mapped page containing
    [a]; memoized until the next store to that page.
    @raise Segfault if the page is unmapped. *)

val page_bytes_hash : Bytes.t -> int
(** [page_bytes_hash b] hashes a detached page-sized buffer with the same
    function as {!page_hash} — the destination-side validator for cached
    residual pages. @raise Invalid_argument if [b] is not exactly one
    page long. *)

(** {1 Typed access} *)

(** [page_for_read t a] is the live page buffer containing [a] — the
    building block of the MVM engine's inlined word-access fast path.
    The handle aliases the mapped page and stays valid only until the
    next {!munmap}/{!scrub_range}; callers must re-fetch it at any point
    such a call could run. @raise Segfault if the page is unmapped. *)
val page_for_read : t -> addr -> Bytes.t

(** [page_for_write t a] is {!page_for_read} plus the dirty-page mark of
    a store ({!page_dirty}, access epochs, hash-memo invalidation) — use
    it before writing into the returned buffer. Subsequent direct writes
    to the same page within one uninterrupted slice need no re-mark: the
    page is already stamped with the current epoch.
    @raise Segfault if the page is unmapped. *)
val page_for_write : t -> addr -> Bytes.t

val load_u8 : t -> addr -> int
val store_u8 : t -> addr -> int -> unit

val load_word : t -> addr -> int
(** 8-byte little-endian load. @raise Segfault on unmapped access. *)

val store_word : t -> addr -> int -> unit

val load_bytes : t -> addr -> int -> Bytes.t
val store_bytes : t -> addr -> Bytes.t -> unit

(** [store_sub t addr b ~pos ~len] writes [b[pos .. pos+len-1]] at [addr]
    without materialising the sub-range — the zero-copy counterpart of
    [store_bytes] for unpacking length-prefixed views straight off the
    wire. @raise Invalid_argument if [pos]/[len] fall outside [b]. *)
val store_sub : t -> addr -> Bytes.t -> pos:int -> len:int -> unit

(** [add_to_buffer t ~addr ~len buf] appends the range to [buf] page run
    by page run, with no intermediate [Bytes.t] — the zero-copy packing
    path of a migration. @raise Segfault on unmapped access. *)
val add_to_buffer : t -> addr:addr -> len:int -> Buffer.t -> unit

val load_string : t -> addr -> int -> string

(** [load_cstring t addr] reads a NUL-terminated string (bounded at 4 KB to
    keep runaway reads from looping forever). *)
val load_cstring : t -> addr -> string

(** [fill t ~addr ~size byte] writes [size] copies of [byte]. *)
val fill : t -> addr:addr -> size:int -> int -> unit

(** [copy_within t ~src ~dst ~size] copies inside one space. Disjoint
    ranges blit page-to-page with no intermediate allocation; overlapping
    ranges go through a temporary. *)
val copy_within : t -> src:addr -> dst:addr -> size:int -> unit

(** [blit ~src ~src_addr ~dst ~dst_addr ~size] copies bytes across spaces —
    the heart of an iso-address migration when [src_addr = dst_addr].
    Distinct spaces blit directly page run by page run. *)
val blit : src:t -> src_addr:addr -> dst:t -> dst_addr:addr -> size:int -> unit
