type addr = Layout.addr

exception Segfault of { addr : addr; node : int; what : string }

let word_size = 8

type t = {
  node : int;
  pages : (int, Bytes.t) Hashtbl.t; (* page index -> page contents *)
  mutable mmap_calls : int;
}

let create ~node () = { node; pages = Hashtbl.create 1024; mmap_calls = 0 }

let node t = t.node

let segv t addr what = raise (Segfault { addr; node = t.node; what })

let check_aligned what ~addr ~size =
  if not (Layout.is_page_aligned addr) || not (Layout.is_page_aligned size) || size <= 0 then
    invalid_arg (Printf.sprintf "Address_space.%s: unaligned range (0x%x, %d)" what addr size)

let mmap t ~addr ~size =
  check_aligned "mmap" ~addr ~size;
  let first = Layout.page_of_addr addr in
  let n = size / Layout.page_size in
  for p = first to first + n - 1 do
    if Hashtbl.mem t.pages p then
      invalid_arg (Printf.sprintf "Address_space.mmap: page 0x%x already mapped"
                     (Layout.addr_of_page p))
  done;
  for p = first to first + n - 1 do
    Hashtbl.replace t.pages p (Bytes.make Layout.page_size '\000')
  done;
  t.mmap_calls <- t.mmap_calls + 1

let munmap t ~addr ~size =
  check_aligned "munmap" ~addr ~size;
  let first = Layout.page_of_addr addr in
  let n = size / Layout.page_size in
  for p = first to first + n - 1 do
    if not (Hashtbl.mem t.pages p) then
      invalid_arg (Printf.sprintf "Address_space.munmap: page 0x%x not mapped"
                     (Layout.addr_of_page p))
  done;
  for p = first to first + n - 1 do
    Hashtbl.remove t.pages p
  done

let is_mapped t a = Hashtbl.mem t.pages (Layout.page_of_addr a)

let range_mapped t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let rec loop p = p > last || (Hashtbl.mem t.pages p && loop (p + 1)) in
  size = 0 || loop first

let range_unmapped t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let rec loop p = p > last || ((not (Hashtbl.mem t.pages p)) && loop (p + 1)) in
  size = 0 || loop first

let scrub_range t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let n = ref 0 in
  if size > 0 then
    for p = first to last do
      if Hashtbl.mem t.pages p then begin
        Hashtbl.remove t.pages p;
        incr n
      end
    done;
  !n

let mapped_pages t = Hashtbl.length t.pages

let mmap_calls t = t.mmap_calls

let page t what a =
  match Hashtbl.find_opt t.pages (Layout.page_of_addr a) with
  | Some p -> p
  | None -> segv t a what

let load_u8 t a = Char.code (Bytes.get (page t "load" a) (a land (Layout.page_size - 1)))

let store_u8 t a v =
  Bytes.set (page t "store" a) (a land (Layout.page_size - 1)) (Char.chr (v land 0xff))

(* Word accesses are frequent; fast-path the common case where the whole
   word lies inside one page. *)
let load_word t a =
  let off = a land (Layout.page_size - 1) in
  if off <= Layout.page_size - 8 then begin
    let p = page t "load" a in
    Int64.to_int (Bytes.get_int64_le p off)
  end
  else begin
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor load_u8 t (a + i)
    done;
    !v
  end

let store_word t a v =
  let off = a land (Layout.page_size - 1) in
  if off <= Layout.page_size - 8 then begin
    let p = page t "store" a in
    Bytes.set_int64_le p off (Int64.of_int v)
  end
  else
    for i = 0 to 7 do
      store_u8 t (a + i) ((v lsr (8 * i)) land 0xff)
    done

let load_bytes t a len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (Layout.page_size - 1) in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t "load" addr in
    Bytes.blit p off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let store_bytes t a b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (Layout.page_size - 1) in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t "store" addr in
    Bytes.blit b !pos p off chunk;
    pos := !pos + chunk
  done

let load_string t a len = Bytes.to_string (load_bytes t a len)

let load_cstring t a =
  let buf = Buffer.create 32 in
  let rec loop i =
    if i >= 4096 then Buffer.contents buf
    else begin
      let c = load_u8 t (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        loop (i + 1)
      end
    end
  in
  loop 0

let fill t ~addr ~size byte =
  store_bytes t addr (Bytes.make size (Char.chr (byte land 0xff)))

let copy_within t ~src ~dst ~size =
  if size > 0 then store_bytes t dst (load_bytes t src size)

let blit ~src ~src_addr ~dst ~dst_addr ~size =
  if size > 0 then store_bytes dst dst_addr (load_bytes src src_addr size)
