type addr = Layout.addr

exception Segfault of { addr : addr; node : int; what : string }

let word_size = 8

type t = {
  node : int;
  pages : (int, Bytes.t) Hashtbl.t; (* page index -> page contents *)
  mutable mmap_calls : int;
  (* One-entry page cache: guest word/byte accesses show heavy page
     locality (stack frames, header walks), so memoizing the last-touched
     page turns most accesses into a compare + array index instead of a
     Hashtbl probe. [-1] = empty. Invalidated whenever a page is removed
     ([munmap]/[scrub_range]); [mmap] never replaces an existing page so
     it cannot stale the cache. *)
  mutable last_page : int;
  mutable last_bytes : Bytes.t;
  (* Dirty-page tracking for the v2 migration codec: a page is dirty if
     any store touched it since it was mapped. Clean pages are still
     all-zero ([mmap] zero-fills), so the group-migration manifest can
     elide them without reading their contents. [last_dirty] memoizes the
     last page marked so the hot store path usually pays one int compare
     instead of a Hashtbl write; it is invalidated (set to [-1]) whenever
     a page is removed, since a fresh mapping of the same index must be
     markable again. *)
  dirty : (int, int) Hashtbl.t;
      (* page index -> access epoch of the last store; presence alone means
         "dirty since mapped" (what the v2 manifest needs), the stored epoch
         feeds the access-heat telemetry below *)
  mutable last_dirty : int;
  (* Access epochs for placement telemetry: [advance_epoch] opens a new
     observation window, and [dirty_in_epoch] counts the pages of a range
     whose last store falls inside the current window — the "heat" the
     access-imbalance balancer feeds on. Epoch 0 is the whole pre-history,
     so heat reads 0 until a window has been opened. *)
  mutable epoch : int;
  (* Content-hash memo for the v3 delta codec: page index -> 62-bit page
     hash. An entry is valid only while no store has touched the page
     since it was computed. Invalidation rides the existing dirty epoch:
     [page_hash] resets [last_dirty] after memoizing, so the very next
     store — to any page — takes [wpage]'s slow path, which removes the
     memo entry of the page it touches. A page whose memo survives has
     provably not been stored to since the hash was taken. *)
  hash_memo : (int, int) Hashtbl.t;
}

let create ~node () =
  {
    node;
    pages = Hashtbl.create 1024;
    mmap_calls = 0;
    last_page = -1;
    last_bytes = Bytes.empty;
    dirty = Hashtbl.create 1024;
    last_dirty = -1;
    epoch = 0;
    hash_memo = Hashtbl.create 64;
  }

let node t = t.node

let segv t addr what = raise (Segfault { addr; node = t.node; what })

let check_aligned what ~addr ~size =
  if not (Layout.is_page_aligned addr) || not (Layout.is_page_aligned size) || size <= 0 then
    invalid_arg (Printf.sprintf "Address_space.%s: unaligned range (0x%x, %d)" what addr size)

let mmap t ~addr ~size =
  check_aligned "mmap" ~addr ~size;
  let first = Layout.page_of_addr addr in
  let n = size / Layout.page_size in
  for p = first to first + n - 1 do
    if Hashtbl.mem t.pages p then
      invalid_arg (Printf.sprintf "Address_space.mmap: page 0x%x already mapped"
                     (Layout.addr_of_page p))
  done;
  for p = first to first + n - 1 do
    Hashtbl.replace t.pages p (Bytes.make Layout.page_size '\000')
  done;
  t.mmap_calls <- t.mmap_calls + 1

let munmap t ~addr ~size =
  check_aligned "munmap" ~addr ~size;
  let first = Layout.page_of_addr addr in
  let n = size / Layout.page_size in
  for p = first to first + n - 1 do
    if not (Hashtbl.mem t.pages p) then
      invalid_arg (Printf.sprintf "Address_space.munmap: page 0x%x not mapped"
                     (Layout.addr_of_page p))
  done;
  for p = first to first + n - 1 do
    Hashtbl.remove t.pages p;
    Hashtbl.remove t.dirty p;
    Hashtbl.remove t.hash_memo p
  done;
  t.last_page <- -1;
  t.last_dirty <- -1

let is_mapped t a = Hashtbl.mem t.pages (Layout.page_of_addr a)

let range_mapped t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let rec loop p = p > last || (Hashtbl.mem t.pages p && loop (p + 1)) in
  size = 0 || loop first

let range_unmapped t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let rec loop p = p > last || ((not (Hashtbl.mem t.pages p)) && loop (p + 1)) in
  size = 0 || loop first

let scrub_range t ~addr ~size =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr + size - 1) in
  let n = ref 0 in
  if size > 0 then begin
    for p = first to last do
      if Hashtbl.mem t.pages p then begin
        Hashtbl.remove t.pages p;
        Hashtbl.remove t.dirty p;
        Hashtbl.remove t.hash_memo p;
        incr n
      end
    done;
    t.last_page <- -1;
    t.last_dirty <- -1
  end;
  !n

let mapped_pages t = Hashtbl.length t.pages

let mmap_calls t = t.mmap_calls

let page t what a =
  let p = Layout.page_of_addr a in
  if p = t.last_page then t.last_bytes
  else
    match Hashtbl.find_opt t.pages p with
    | Some bytes ->
      t.last_page <- p;
      t.last_bytes <- bytes;
      bytes
    | None -> segv t a what

(* The store-path twin of [page]: same lookup, plus the dirty mark. *)
let wpage t what a =
  let p = Layout.page_of_addr a in
  if p <> t.last_dirty then begin
    Hashtbl.replace t.dirty p t.epoch;
    Hashtbl.remove t.hash_memo p;
    t.last_dirty <- p
  end;
  page t what a

let page_dirty t a = Hashtbl.mem t.dirty (Layout.page_of_addr a)

let advance_epoch t =
  t.epoch <- t.epoch + 1;
  (* The memo would let a store inside the new window keep the old
     window's epoch stamp; force the slow path once per page. *)
  t.last_dirty <- -1

let epoch t = t.epoch

let dirty_in_epoch t ~addr ~size =
  if size = 0 then 0
  else begin
    let first = Layout.page_of_addr addr in
    let last = Layout.page_of_addr (addr + size - 1) in
    let n = ref 0 in
    for p = first to last do
      match Hashtbl.find_opt t.dirty p with
      | Some e when e = t.epoch && t.epoch > 0 -> incr n
      | _ -> ()
    done;
    !n
  end

let page_is_zero t a =
  let p = Layout.page_of_addr a in
  if not (Hashtbl.mem t.dirty p) then begin
    (* Never stored to since mapping: still the zero fill from [mmap].
       Probe the mapping so an unmapped page faults like any access. *)
    ignore (page t "is_zero" a);
    true
  end
  else begin
    let bytes = page t "is_zero" a in
    let words = Layout.page_size / 8 in
    let rec scan i =
      i >= words || (Bytes.get_int64_le bytes (i * 8) = 0L && scan (i + 1))
    in
    scan 0
  end

(* Splitmix64 finalizer: FNV-1a alone mixes low bits poorly for 8-byte
   word input; the finalizer spreads every input bit over the whole
   word, which keeps the truncation to 62 bits collision-resistant. *)
let splitmix_mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 30) in
  let h = Int64.mul h 0xbf58476d1ce4e5b9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 27) in
  let h = Int64.mul h 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

let page_bytes_hash bytes =
  if Bytes.length bytes <> Layout.page_size then
    invalid_arg "Address_space.page_bytes_hash: not a page-sized buffer";
  let h = ref 0xcbf29ce484222325L in
  let words = Layout.page_size / 8 in
  for i = 0 to words - 1 do
    h := Int64.mul (Int64.logxor !h (Bytes.get_int64_le bytes (i * 8))) 0x100000001b3L
  done;
  Int64.to_int (Int64.logand (splitmix_mix !h) 0x3FFFFFFFFFFFFFFFL)

let page_hash t a =
  let p = Layout.page_of_addr a in
  match Hashtbl.find_opt t.hash_memo p with
  | Some h -> h
  | None ->
    let h = page_bytes_hash (page t "page_hash" a) in
    Hashtbl.replace t.hash_memo p h;
    (* Force the next store onto [wpage]'s slow path, which removes the
       memo entry of whichever page it hits (see the field comment). *)
    t.last_dirty <- -1;
    h

(* Raw page handles for the MVM execution engine's inlined load/store
   fast path. [page_for_read]/[page_for_write] are exactly the internal
   [page]/[wpage] lookups (including the dirty mark on the write side);
   the returned buffer aliases the live page and is valid only until the
   next [munmap]/[scrub_range], so callers must drop their handle at
   every point such a call could run (the engine keeps them only within
   one uninterrupted run-until-event slice, where the guest cannot
   unmap). *)
let page_for_read t a = page t "load" a

let page_for_write t a = wpage t "store" a

let load_u8 t a = Char.code (Bytes.get (page t "load" a) (a land (Layout.page_size - 1)))

let store_u8 t a v =
  Bytes.set (wpage t "store" a) (a land (Layout.page_size - 1)) (Char.chr (v land 0xff))

(* Word accesses are frequent; fast-path the common case where the whole
   word lies inside one page. *)
let load_word t a =
  let off = a land (Layout.page_size - 1) in
  if off <= Layout.page_size - 8 then begin
    let p = page t "load" a in
    Int64.to_int (Bytes.get_int64_le p off)
  end
  else begin
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor load_u8 t (a + i)
    done;
    !v
  end

let store_word t a v =
  let off = a land (Layout.page_size - 1) in
  if off <= Layout.page_size - 8 then begin
    let p = wpage t "store" a in
    Bytes.set_int64_le p off (Int64.of_int v)
  end
  else
    for i = 0 to 7 do
      store_u8 t (a + i) ((v lsr (8 * i)) land 0xff)
    done

let load_bytes t a len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (Layout.page_size - 1) in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t "load" addr in
    Bytes.blit p off out !pos chunk;
    pos := !pos + chunk
  done;
  out

let store_bytes t a b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let addr = a + !pos in
    let off = addr land (Layout.page_size - 1) in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = wpage t "store" addr in
    Bytes.blit b !pos p off chunk;
    pos := !pos + chunk
  done

let store_sub t a b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Address_space.store_sub";
  let done_ = ref 0 in
  while !done_ < len do
    let addr = a + !done_ in
    let off = addr land (Layout.page_size - 1) in
    let chunk = min (len - !done_) (Layout.page_size - off) in
    let p = wpage t "store" addr in
    Bytes.blit b (pos + !done_) p off chunk;
    done_ := !done_ + chunk
  done

let add_to_buffer t ~addr ~len buf =
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = a land (Layout.page_size - 1) in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t "load" a in
    Buffer.add_subbytes buf p off chunk;
    pos := !pos + chunk
  done

let load_string t a len = Bytes.to_string (load_bytes t a len)

let load_cstring t a =
  let buf = Buffer.create 32 in
  let rec loop i =
    if i >= 4096 then Buffer.contents buf
    else begin
      let c = load_u8 t (a + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        loop (i + 1)
      end
    end
  in
  loop 0

let fill t ~addr ~size byte =
  let c = Char.chr (byte land 0xff) in
  let pos = ref 0 in
  while !pos < size do
    let a = addr + !pos in
    let off = a land (Layout.page_size - 1) in
    let chunk = min (size - !pos) (Layout.page_size - off) in
    let p = wpage t "store" a in
    Bytes.fill p off chunk c;
    pos := !pos + chunk
  done

(* Page-run copy between two (possibly identical) spaces: blit directly
   between the source and destination pages, chunking at whichever page
   boundary comes first, with no intermediate allocation. Only safe for
   non-overlapping ranges. *)
let blit_disjoint ~src ~src_addr ~dst ~dst_addr ~size =
  let pos = ref 0 in
  while !pos < size do
    let sa = src_addr + !pos and da = dst_addr + !pos in
    let soff = sa land (Layout.page_size - 1) in
    let doff = da land (Layout.page_size - 1) in
    let chunk =
      min (size - !pos) (min (Layout.page_size - soff) (Layout.page_size - doff))
    in
    let sp = page src "load" sa in
    let dp = wpage dst "store" da in
    Bytes.blit sp soff dp doff chunk;
    pos := !pos + chunk
  done

let copy_within t ~src ~dst ~size =
  if size > 0 then begin
    if src + size <= dst || dst + size <= src then
      blit_disjoint ~src:t ~src_addr:src ~dst:t ~dst_addr:dst ~size
    else
      (* Overlapping ranges keep the original copy-via-temporary
         semantics. *)
      store_bytes t dst (load_bytes t src size)
  end

let blit ~src ~src_addr ~dst ~dst_addr ~size =
  if size > 0 then begin
    if src != dst then blit_disjoint ~src ~src_addr ~dst ~dst_addr ~size
    else copy_within src ~src:src_addr ~dst:dst_addr ~size
  end
