module Packet = Pm2_net.Packet
module Layout = Pm2_vmem.Layout

(* One pooled page of content. [refs] counts occurrences across every
   stored snapshot's hash list (a page referenced by five checkpoints —
   or five times by one checkpoint — carries five refs); it reaches zero
   only when the last referencing snapshot is superseded or dropped. *)
type pooled = { page : Bytes.t; mutable refs : int }

type entry = {
  e_tid : int;
  e_node : int; (* node the thread lived on at snapshot time *)
  e_gen : int; (* that node's incarnation number at snapshot time *)
  e_at : float; (* virtual time of the snapshot, µs *)
  e_frame : Bytes.t; (* v3 codec group-of-one image *)
  e_ranges : (int * int) list; (* (addr, size) slot ranges, for the probe *)
  e_hashes : int list; (* content refs, one per non-zero page *)
}

type t = {
  pool : (int, pooled) Hashtbl.t; (* page hash -> content *)
  entries : (int, entry) Hashtbl.t; (* tid -> latest snapshot *)
  mutable saves : int;
  mutable dedup_pages : int; (* page saves served by the pool *)
}

let create () =
  { pool = Hashtbl.create 64; entries = Hashtbl.create 16; saves = 0; dedup_pages = 0 }

let has_page t ~hash = Hashtbl.mem t.pool hash

let find_page t ~hash =
  match Hashtbl.find_opt t.pool hash with Some p -> Some p.page | None -> None

let decref t hash =
  match Hashtbl.find_opt t.pool hash with
  | None -> ()
  | Some p ->
    p.refs <- p.refs - 1;
    if p.refs <= 0 then Hashtbl.remove t.pool hash

(* Incref or insert; returns [true] iff the page was new to the pool. *)
let incref t hash page =
  match Hashtbl.find_opt t.pool hash with
  | Some p ->
    p.refs <- p.refs + 1;
    false
  | None ->
    Hashtbl.replace t.pool hash { page = Bytes.copy page; refs = 1 };
    true

let save t ~tid ~node ~gen ~at ~frame ~ranges ~pages =
  let new_pages = ref 0 in
  List.iter
    (fun (hash, page) ->
      if incref t hash page then incr new_pages else t.dedup_pages <- t.dedup_pages + 1)
    pages;
  (* Supersede the previous snapshot only after the new pages are pinned,
     so shared content never transits through refcount zero. *)
  (match Hashtbl.find_opt t.entries tid with
  | Some old -> List.iter (decref t) old.e_hashes
  | None -> ());
  Hashtbl.replace t.entries tid
    {
      e_tid = tid;
      e_node = node;
      e_gen = gen;
      e_at = at;
      e_frame = Bytes.copy frame;
      e_ranges = ranges;
      e_hashes = List.map fst pages;
    };
  t.saves <- t.saves + 1;
  !new_pages

let latest t ~tid = Hashtbl.find_opt t.entries tid

let drop t ~tid =
  match Hashtbl.find_opt t.entries tid with
  | None -> ()
  | Some e ->
    List.iter (decref t) e.e_hashes;
    Hashtbl.remove t.entries tid

let entries t = Hashtbl.length t.entries

let saves t = t.saves

let dedup_pages t = t.dedup_pages

let pool_pages t = Hashtbl.length t.pool

let pool_bytes t =
  Hashtbl.fold (fun _ p acc -> acc + Bytes.length p.page) t.pool 0

let frame_bytes t =
  Hashtbl.fold (fun _ e acc -> acc + Bytes.length e.e_frame) t.entries 0

let bytes t = pool_bytes t + frame_bytes t

(* -- serialization ------------------------------------------------------ *)

let magic = 0x504D4953 (* "PMIS" *)

let version = 1

let to_bytes t =
  let p = Packet.packer () in
  Packet.pack_int p magic;
  Packet.pack_int p version;
  Packet.pack_int p t.saves;
  Packet.pack_int p t.dedup_pages;
  (* Pool, sorted by hash for a canonical encoding. *)
  let pages =
    Hashtbl.fold (fun h pd acc -> (h, pd.page) :: acc) t.pool [] |> List.sort compare
  in
  Packet.pack_list p
    (fun (h, page) ->
      Packet.pack_int p h;
      Packet.pack_bytes p page)
    pages;
  let es =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> compare a.e_tid b.e_tid)
  in
  Packet.pack_list p
    (fun e ->
      Packet.pack_int p e.e_tid;
      Packet.pack_int p e.e_node;
      Packet.pack_int p e.e_gen;
      Packet.pack_float p e.e_at;
      Packet.pack_bytes p e.e_frame;
      Packet.pack_list p
        (fun (a, s) ->
          Packet.pack_int p a;
          Packet.pack_int p s)
        e.e_ranges;
      Packet.pack_list p (Packet.pack_int p) e.e_hashes)
    es;
  Packet.contents p

let of_bytes b =
  match
    let u = Packet.unpacker b in
    if Packet.unpack_int u <> magic then Error "image store: bad magic"
    else if Packet.unpack_int u <> version then Error "image store: bad version"
    else begin
      let t = create () in
      t.saves <- Packet.unpack_int u;
      t.dedup_pages <- Packet.unpack_int u;
      let pages =
        Packet.unpack_list u (fun () ->
            let h = Packet.unpack_int u in
            let page = Packet.unpack_bytes u in
            (h, page))
      in
      List.iter
        (fun (h, page) -> Hashtbl.replace t.pool h { page; refs = 0 })
        pages;
      let es =
        Packet.unpack_list u (fun () ->
            let e_tid = Packet.unpack_int u in
            let e_node = Packet.unpack_int u in
            let e_gen = Packet.unpack_int u in
            let e_at = Packet.unpack_float u in
            let e_frame = Packet.unpack_bytes u in
            let e_ranges =
              Packet.unpack_list u (fun () ->
                  let a = Packet.unpack_int u in
                  let s = Packet.unpack_int u in
                  (a, s))
            in
            let e_hashes = Packet.unpack_list u (fun () -> Packet.unpack_int u) in
            { e_tid; e_node; e_gen; e_at; e_frame; e_ranges; e_hashes })
      in
      if Packet.remaining u <> 0 then Error "image store: trailing bytes"
      else begin
        (* Rebuild refcounts from the entries; every referenced hash must
           resolve, or the image is not self-contained. *)
        let missing = ref None in
        List.iter
          (fun e ->
            Hashtbl.replace t.entries e.e_tid e;
            List.iter
              (fun h ->
                match Hashtbl.find_opt t.pool h with
                | Some pd -> pd.refs <- pd.refs + 1
                | None -> if !missing = None then missing := Some h)
              e.e_hashes)
          es;
        match !missing with
        | Some h -> Error (Printf.sprintf "image store: dangling page hash %x" h)
        | None ->
          if Hashtbl.fold (fun _ pd acc -> acc || pd.refs = 0) t.pool false then
            Error "image store: unreferenced pooled page"
          else Ok t
      end
    end
  with
  | exception Invalid_argument _ -> Error "image store: truncated"
  | v -> v

let page_size = Layout.page_size
