(** Content-addressed store of checkpointed thread images.

    One snapshot per thread (the latest wins), stored as the same v3
    codec frame the migration pipeline ships on the wire — the store and
    the wire share one format, so a restore is just an
    [unpack_group]. Page content is held once in a shared pool keyed by
    the FNV-1a-64 page hashes from {!Pm2_vmem.Address_space}: a page
    whose content is already pooled (from an earlier checkpoint of the
    same thread, or from {e any other} thread) costs only a reference,
    which is why steady-state checkpoint bytes are deltas for free.

    Refcounts track occurrences across snapshots' hash lists; a pooled
    page is evicted when the last snapshot referencing it is superseded
    ({!save}) or dropped ({!drop}). *)

type entry = {
  e_tid : int;
  e_node : int; (* node the thread lived on at snapshot time *)
  e_gen : int; (* that node's incarnation number at snapshot time *)
  e_at : float; (* virtual time of the snapshot, µs *)
  e_frame : Bytes.t; (* v3 codec group-of-one wire image *)
  e_ranges : (int * int) list; (* (addr, size) slot ranges, for the probe *)
  e_hashes : int list; (* content refs, one per non-zero page *)
}

type t

val create : unit -> t

(** [save t ~tid ~node ~gen ~at ~frame ~ranges ~pages] stores a new
    snapshot for [tid], superseding any previous one. [pages] is the
    [(hash, content)] list of every non-zero page of the image (content
    is copied); returns how many of them were new to the pool — the
    incremental content cost of this checkpoint. *)
val save :
  t ->
  tid:int ->
  node:int ->
  gen:int ->
  at:float ->
  frame:Bytes.t ->
  ranges:(int * int) list ->
  pages:(int * Bytes.t) list ->
  int

val latest : t -> tid:int -> entry option

(** [drop t ~tid] forgets [tid]'s snapshot (thread exited), releasing its
    page references. *)
val drop : t -> tid:int -> unit

val has_page : t -> hash:int -> bool

(** [find_page t ~hash] — the pooled content for [hash]; what the restore
    callback feeds to [decode_delta_range]. *)
val find_page : t -> hash:int -> Bytes.t option

(** {1 Statistics} *)

val entries : t -> int
val saves : t -> int

val dedup_pages : t -> int
(** Page saves served by the pool instead of new content. *)

val pool_pages : t -> int
val pool_bytes : t -> int
val frame_bytes : t -> int

val bytes : t -> int
(** Total store footprint: pooled content + stored frames. *)

(** {1 Serialization}

    A self-contained durable image of the whole store (pool + snapshots),
    canonical (sorted) so equal stores encode identically. *)

val to_bytes : t -> Bytes.t

(** Rejects truncation, bad magic/version, trailing bytes, snapshots
    referencing pages absent from the pool, and unreferenced pool
    pages. *)
val of_bytes : Bytes.t -> (t, string) result

val page_size : int
