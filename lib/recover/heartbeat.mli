(** Phi-style heartbeat failure detector (virtual time, pure state).

    Surviving nodes beacon each other with HBEA frames
    ({!Pm2_net.Reliable.send_heartbeat}); the cluster feeds every beacon
    that survives the fault plan into {!heard} and polls {!verdict} on a
    monitor tick. Silence past [suspect_after] beacon intervals yields
    [Suspected]; past [dead_after] intervals, [Dead]. A suspected peer
    that proves alive doubles its personal threshold scale (capped at
    8x) — exponential backoff against flapping — so detection time stays
    bounded by {!detection_bound}. *)

type verdict = Alive | Suspected | Dead

type t

(** [create ~nodes ~interval ~now ()] — [interval] is the beacon period
    in virtual µs; [now] baselines every peer as just-heard.
    Defaults: [suspect_after] 3, [dead_after] 8.
    @raise Invalid_argument unless
    [1 <= suspect_after < dead_after], [nodes > 0], [interval > 0]. *)
val create :
  ?suspect_after:int -> ?dead_after:int -> nodes:int -> interval:float -> now:float ->
  unit -> t

(** A beacon from [node] (incarnation [gen]) arrived at [now]. Clears any
    standing suspicion, doubling the peer's backoff scale. *)
val heard : t -> node:int -> gen:int -> now:float -> unit

(** Re-baseline [node] as just-heard (observed restart), keeping its
    backoff scale. *)
val reset : t -> node:int -> now:float -> unit

val generation : t -> node:int -> int
(** The incarnation number carried by [node]'s last beacon. *)

val verdict : t -> node:int -> now:float -> verdict

val detection_bound : t -> float
(** Worst-case virtual time from a peer's last beacon to a [Dead]
    verdict, at maximal backoff. *)
