(* Phi-style failure detector over periodic HBEA beacons, in virtual
   time. Pure state machine: the cluster feeds it [heard] on each beacon
   that survives the network and polls [verdict] on its monitor tick.

   Thresholds are expressed in missed intervals. A peer whose silence
   exceeds [suspect_after] intervals is Suspected; past [dead_after] it
   is Dead. Each time a suspected peer proves alive again, its personal
   scale doubles (capped) — the backoff that keeps a jittery link from
   flapping the detector. *)

type verdict = Alive | Suspected | Dead

type peer = {
  mutable last : float; (* virtual time of the last beacon *)
  mutable gen : int; (* sender incarnation carried by that beacon *)
  mutable scale : float; (* per-peer backoff multiplier, >= 1 *)
  mutable suspected : bool; (* currently past the suspicion threshold *)
}

type t = {
  interval : float;
  suspect_after : int;
  dead_after : int;
  max_scale : float;
  peers : peer array;
}

let create ?(suspect_after = 3) ?(dead_after = 8) ~nodes ~interval ~now () =
  if nodes <= 0 then invalid_arg "Heartbeat.create: nodes must be positive";
  if interval <= 0. then invalid_arg "Heartbeat.create: interval must be positive";
  if suspect_after < 1 || dead_after <= suspect_after then
    invalid_arg "Heartbeat.create: need 1 <= suspect_after < dead_after";
  {
    interval;
    suspect_after;
    dead_after;
    max_scale = 8.;
    peers =
      Array.init nodes (fun _ ->
          { last = now; gen = 0; scale = 1.; suspected = false });
  }

let heard t ~node ~gen ~now =
  let p = t.peers.(node) in
  if p.suspected then begin
    (* False suspicion: the peer was merely slow. Back off. *)
    p.scale <- Float.min (p.scale *. 2.) t.max_scale;
    p.suspected <- false
  end;
  p.last <- Float.max p.last now;
  p.gen <- gen

(* A restart (or initial baseline) resets the silence clock without
   touching the backoff scale. *)
let reset t ~node ~now =
  let p = t.peers.(node) in
  p.last <- now;
  p.suspected <- false

let generation t ~node = t.peers.(node).gen

let verdict t ~node ~now =
  let p = t.peers.(node) in
  let silent = now -. p.last in
  if silent >= t.interval *. float_of_int t.dead_after *. p.scale then Dead
  else if silent >= t.interval *. float_of_int t.suspect_after *. p.scale then begin
    p.suspected <- true;
    Suspected
  end
  else Alive

(* Bounded detection: a dead peer is declared within this much virtual
   time of its last beacon, even at maximal backoff. *)
let detection_bound t = t.interval *. float_of_int t.dead_after *. t.max_scale
