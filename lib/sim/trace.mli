(** Execution traces.

    Collects the [pm2_printf]-style output of a simulated run, each line
    tagged with the emitting node and the virtual time — the format of the
    paper's execution listings (Figs. 1–4, 8, 9): ["[node0] value = 1"]. *)

type entry = {
  time : Engine.time;
  node : int;
  text : string;
}

type t

val create : unit -> t

val emit : t -> time:Engine.time -> node:int -> string -> unit

(** Entries in emission order. *)
val entries : t -> entry list

(** Lines rendered as in the paper: ["[node0] value = 1"]. *)
val lines : t -> string list

(** Lines with a virtual timestamp prefix, for debugging. *)
val timed_lines : t -> string list

val clear : t -> unit

(** [contains t sub] is [true] iff some line contains substring [sub]. *)
val contains : t -> string -> bool

val pp : Format.formatter -> t -> unit

(** [sink t] renders [Thread_printf] events into [t] in the legacy
    ["[node0] ..."] line format (and ignores every other event), so the
    paper-listing output keeps flowing when [pm2_printf] is routed
    through the observability pipeline. *)
val sink : t -> Pm2_obs.Sink.t
