type entry = {
  time : Engine.time;
  node : int;
  text : string;
}

type t = { entries : entry Pm2_util.Vec.t }

let create () = { entries = Pm2_util.Vec.create () }

let emit t ~time ~node text = Pm2_util.Vec.push t.entries { time; node; text }

let entries t = Pm2_util.Vec.to_list t.entries

let render e = Printf.sprintf "[node%d] %s" e.node e.text

let lines t = List.map render (entries t)

let timed_lines t =
  List.map (fun e -> Printf.sprintf "%10.1f %s" e.time (render e)) (entries t)

let clear t = Pm2_util.Vec.clear t.entries

let contains t sub =
  let has_sub line =
    let ls = String.length line and ss = String.length sub in
    let rec loop i = i + ss <= ls && (String.sub line i ss = sub || loop (i + 1)) in
    ss = 0 || loop 0
  in
  List.exists has_sub (lines t)

let pp ppf t = List.iter (fun l -> Format.fprintf ppf "%s@." l) (lines t)

(* The legacy trace as an observability sink: [pm2_printf] output now
   travels the event pipeline as [Thread_printf] and is rendered back
   into the historical "[node0] ..." line format here. *)
let sink t =
  Pm2_obs.Sink.make ~name:"trace" (fun ~time ~node ev ->
      match ev with
      | Pm2_obs.Event.Thread_printf { text; _ } -> emit t ~time ~node text
      | _ -> ())
