(** Discrete-event simulation engine.

    Virtual time is a [float] count of microseconds since simulation start.
    Events are closures ordered by (time, insertion sequence): ties are
    broken FIFO, so the simulation is fully deterministic. *)

type t

type time = float
(** Microseconds of virtual time. *)

val create : unit -> t

val now : t -> time

(** [schedule t ~at f] runs [f] at absolute virtual time [at].
    @raise Invalid_argument if [at] is in the past. *)
val schedule : t -> at:time -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] runs [f] at [now t +. delay]. Negative
    delays are clamped to 0. *)
val schedule_after : t -> delay:time -> (unit -> unit) -> unit

(** Number of events waiting to run. *)
val pending : t -> int

(** Sequence number the next [schedule] will assign. Together with
    {!peek_next} this lets a caller (the parallel cluster scheduler)
    recognise its own events at the head of the queue without the
    engine knowing anything about their payloads. *)
val next_seq : t -> int

(** [(time, seq)] of the next event to run, or [None] if drained. *)
val peek_next : t -> (time * int) option

(** [take_batch t ~pred] pops the maximal prefix of events that share
    the next event's time and whose [seq] satisfies [pred], returning
    [(seq, run)] pairs in exactly the order {!step} would have run
    them, and advances the clock to that time. Returns [[]] (and moves
    nothing) when the queue is empty or the head event fails [pred].
    Running the closures in list order is observationally identical to
    stepping — this is the superstep scheduler's claim operation. *)
val take_batch : t -> pred:(int -> bool) -> (int * (unit -> unit)) list

(** [run t] processes events until the queue is empty. Returns the final
    virtual time. [~until] stops the clock at that time (events scheduled
    later stay queued). [~max_events] guards against runaway simulations.
    @raise Failure if [max_events] is exceeded. *)
val run : ?until:time -> ?max_events:int -> t -> time

(** [step t] runs the single next event; [false] if the queue was empty. *)
val step : t -> bool
