type time = float

type event = {
  at : time;
  seq : int;
  run : unit -> unit;
}

(* Binary min-heap on (at, seq). *)
module Heap = struct
  type t = {
    mutable data : event array;
    mutable len : int;
  }

  let dummy = { at = 0.; seq = 0; run = ignore }

  let create () = { data = Array.make 64 dummy; len = 0 }

  let lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h e =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) dummy in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && lt h.data.(!i) h.data.((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = if h.len = 0 then None else Some h.data.(0)

  let pop h =
    if h.len = 0 then invalid_arg "Engine: empty heap";
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    h.data.(h.len) <- dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.data.(l) h.data.(!smallest) then smallest := l;
      if r < h.len && lt h.data.(r) h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type t = {
  heap : Heap.t;
  mutable clock : time;
  mutable next_seq : int;
}

let create () = { heap = Heap.create (); clock = 0.; next_seq = 0 }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then
    invalid_arg (Printf.sprintf "Engine.schedule: at=%g < now=%g" at t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap { at; seq; run = f }

let schedule_after t ~delay f = schedule t ~at:(t.clock +. max 0. delay) f

let next_seq t = t.next_seq

let peek_next t =
  match Heap.peek t.heap with
  | None -> None
  | Some e -> Some (e.at, e.seq)

let pending t = t.heap.Heap.len

(* Pop the maximal prefix of same-time events whose sequence numbers the
   caller recognises. Ties on [at] are FIFO by [seq], so the returned
   list is exactly the order [step] would have run them; running each
   closure in list order is observationally identical to stepping. The
   clock advances to the batch time so closures see the same [now]. *)
let take_batch t ~pred =
  match Heap.peek t.heap with
  | None -> []
  | Some first ->
    let at = first.at in
    let rec collect acc =
      match Heap.peek t.heap with
      | Some e when e.at = at && pred e.seq ->
        let e = Heap.pop t.heap in
        collect ((e.seq, e.run) :: acc)
      | _ -> List.rev acc
    in
    let batch = collect [] in
    if batch <> [] then t.clock <- max t.clock at;
    batch

let step t =
  match Heap.peek t.heap with
  | None -> false
  | Some _ ->
    let e = Heap.pop t.heap in
    t.clock <- max t.clock e.at;
    e.run ();
    true

let run ?until ?(max_events = 200_000_000) t =
  let count = ref 0 in
  let stop = ref false in
  while not !stop do
    match Heap.peek t.heap with
    | None -> stop := true
    | Some e ->
      (match until with
       | Some u when e.at > u ->
         t.clock <- max t.clock u;
         stop := true
       | _ ->
         incr count;
         if !count > max_events then failwith "Engine.run: max_events exceeded";
         ignore (step t))
  done;
  t.clock
