(* PM2's programming model is RPC-based ("Parallel Multithreaded
   Machine"): threads are created on remote nodes by lightweight RPCs.
   This example computes sum(0..n-1) by fanning one worker out to every
   node, each summing its stripe and handing the partial result back
   through join — and, mid-computation, each worker migrates once to the
   next node to show that a computation in flight survives relocation.

   Run with: dune exec examples/remote_procedure.exe [-- <n> <nodes>] *)

open Pm2_mvm.Asm
module Isa = Pm2_mvm.Isa
module Cluster = Pm2_core.Cluster
module Pm2 = Pm2_core.Pm2

(* worker: r1 = lo * 2^32 + len * 2^8 + nodes. Sums lo..lo+len-1 into r0,
   migrating to the next node halfway through. *)
let emit_worker b =
  let fmt = cstring b "stripe done on node %d: %d" in
  proc b "worker" (fun b ->
      imm b r4 256;
      mod_ b r10 r1 r4; (* nodes *)
      div b r5 r1 r4;
      imm b r4 0x1000000;
      mod_ b r9 r5 r4; (* len *)
      div b r8 r5 r4; (* lo *)
      imm b r6 0; (* sum *)
      mov b r5 r8; (* i = lo *)
      add b r7 r8 r9; (* end = lo + len *)
      imm b r4 2;
      div b r9 r9 r4;
      add b r9 r8 r9; (* halfway: lo + len/2 *)
      label b "w.loop";
      bge b r5 r7 "w.done";
      bne b r5 r9 "w.nomig";
      (* migrate to (node + 1) mod nodes, partial sum in registers *)
      sys b Isa.Sys_node;
      addi b r4 r0 1;
      mod_ b r4 r4 r10;
      mov b r1 r4;
      sys b Isa.Sys_migrate;
      label b "w.nomig";
      add b r6 r6 r5;
      addi b r5 r5 1;
      jmp b "w.loop";
      label b "w.done";
      sys b Isa.Sys_node;
      mov b r2 r0;
      mov b r3 r6;
      imm b r1 fmt;
      sys b Isa.Sys_print;
      mov b r0 r6; (* exit value = partial sum *)
      halt b)

(* main: r1 = n * 2^8 + nodes. *)
let emit_main b =
  let fmt = cstring b "total = %d" in
  proc b "main" (fun b ->
      imm b r4 256;
      mod_ b r9 r1 r4; (* nodes *)
      div b r8 r1 r4; (* n *)
      div b r7 r8 r9; (* stripe = n / nodes *)
      imm b r5 0; (* node i *)
      label b "m.fork";
      bge b r5 r9 "m.forked";
      (* stripe length: the last node takes the remainder *)
      addi b r4 r5 1;
      bne b r4 r9 "m.even";
      mul b r4 r5 r7;
      sub b r10 r8 r4; (* len = n - i*stripe *)
      jmp b "m.arg";
      label b "m.even";
      mov b r10 r7;
      label b "m.arg";
      (* arg = (i*stripe) * 2^32 + len * 2^8 + nodes *)
      mul b r4 r5 r7;
      imm b r6 0x100000000;
      mul b r4 r4 r6;
      imm b r6 256;
      mul b r11 r10 r6;
      add b r4 r4 r11;
      add b r4 r4 r9;
      mov b r1 r5;
      lea b r2 "worker";
      mov b r3 r4;
      sys b Isa.Sys_rpc; (* fork the stripe on node r1 *)
      push b r0; (* save the handle *)
      addi b r5 r5 1;
      jmp b "m.fork";
      label b "m.forked";
      (* join all, accumulating exit values *)
      imm b r6 0;
      imm b r5 0;
      label b "m.join";
      bge b r5 r9 "m.joined";
      pop b r1;
      sys b Isa.Sys_join;
      add b r6 r6 r0;
      addi b r5 r5 1;
      jmp b "m.join";
      label b "m.joined";
      mov b r2 r6;
      imm b r1 fmt;
      sys b Isa.Sys_print;
      halt b)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10_000 in
  let nodes = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  assert (n < 1 lsl 24 && nodes < 256 && nodes >= 2);
  let program =
    Pm2.build (fun b ->
        emit_worker b;
        emit_main b)
  in
  let config = Pm2.Config.make ~nodes () in
  let cluster = Cluster.create config program in
  ignore (Cluster.spawn cluster ~node:0 ~entry:"main" ~arg:((n * 256) + nodes) ());
  let makespan = Cluster.run cluster in
  List.iter print_endline (Pm2_sim.Trace.lines (Cluster.trace cluster));
  let expected = n * (n - 1) / 2 in
  Printf.printf "\nexpected total %d; %d RPC workers over %d nodes; %d migrations; %.0f virtual us\n"
    expected nodes nodes
    (List.length (Cluster.migrations cluster))
    makespan;
  Cluster.check_invariants cluster;
  if not (Pm2_sim.Trace.contains (Cluster.trace cluster) ("total = " ^ string_of_int expected))
  then begin
    prerr_endline "FAILED: wrong total";
    exit 1
  end
