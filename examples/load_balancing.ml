(* Dynamic load balancing by preemptive migration — the paper's motivating
   use case (sections 1-2): "a generic module implemented outside the
   running application could balance the load by migrating the application
   threads. The threads are unaware of their being migrated."

   An irregular application spawns all its workers on node 0; the balancer
   spreads them across the cluster while they run. We compare makespans
   with and without balancing.

   Run with: dune exec examples/load_balancing.exe [-- <workers> <nodes>] *)

module Cluster = Pm2_core.Cluster
module Pm2 = Pm2_core.Pm2
module Balancer = Pm2_loadbal.Balancer

let run ~nodes ~workers ~policy =
  let config = Pm2.Config.make ~nodes () in
  let program = Pm2_programs.Figures.image () in
  let cluster = Pm2.launch ~config program ~spawns:[ (0, "spawner", workers) ] in
  let balancer =
    Option.map (fun policy -> Balancer.attach cluster ~policy ~period:400.) policy
  in
  let makespan = Cluster.run cluster in
  Cluster.check_invariants cluster;
  (makespan, balancer, cluster)

let () =
  let workers = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24 in
  let nodes = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  Printf.printf
    "irregular application: %d workers with random workloads, all born on node 0 of %d\n\n"
    workers nodes;
  let baseline, _, _ = run ~nodes ~workers ~policy:None in
  Printf.printf "%-28s makespan %8.0f us\n" "no balancing" baseline;
  List.iter
    (fun policy ->
       let makespan, balancer, cluster = run ~nodes ~workers ~policy:(Some policy) in
       let stats = Balancer.stats (Option.get balancer) in
       Printf.printf "%-28s makespan %8.0f us   (speedup %.2fx, %d migrations)\n"
         (Balancer.policy_to_string policy)
         makespan (baseline /. makespan)
         (List.length (Cluster.migrations cluster));
       ignore stats)
    [
      Balancer.Least_loaded;
      Balancer.Threshold { high = 2; low = 8 };
      Balancer.Round_robin_spread;
    ];
  print_endline "\nthe workers never cooperate: every move is a preemptive, transparent";
  print_endline "iso-address migration decided by the external balancer module"
