(* The paper's §2 narrative, end to end: what happens to pointers when a
   thread migrates, under each migration scheme.

   - Fig. 2: a pointer into the stack, *not* registered — works under the
     iso-address scheme, segfaults under the legacy relocating scheme.
   - Fig. 3: the same pointer, registered with pm2_register_pointer — the
     relocating scheme patches it on arrival.
   - Fig. 4: malloc'd heap data — lost on migration under *any* scheme
     (only pm2_isomalloc'd data follows the thread).

   Run with: dune exec examples/pointer_safety.exe *)

module Cluster = Pm2_core.Cluster
module Pm2 = Pm2_core.Pm2

let program = Pm2_programs.Figures.image ()

let run ~scheme ~entry =
  let config = Pm2.Config.make ~nodes:2 ~scheme () in
  Pm2.run_to_completion ~config program ~entry ()

let show title lines =
  Printf.printf "\n%s\n" title;
  print_endline (String.make (String.length title) '-');
  List.iter print_endline lines

let () =
  print_endline "Thread migration in the presence of pointers (paper, section 2)";

  show "Fig. 2 -- unregistered pointer to a stack variable, legacy relocating scheme"
    (run ~scheme:Cluster.Relocating ~entry:"fig2");
  print_endline "=> the stack moved to a different address; the raw pointer is stale.";

  show "Fig. 3 -- the same pointer, registered, legacy relocating scheme"
    (run ~scheme:Cluster.Relocating ~entry:"fig3");
  print_endline "=> post-migration processing patched the registered pointer.";

  show "Fig. 2 again -- unregistered pointer, iso-address scheme (pm2)"
    (run ~scheme:Cluster.Iso ~entry:"fig2");
  print_endline "=> same virtual addresses on both nodes: nothing to patch.";

  show "Fig. 4 -- pointer to malloc'd heap data, iso-address scheme"
    (run ~scheme:Cluster.Iso ~entry:"fig4");
  print_endline "=> malloc'd data lives in the node-local heap and never migrates;";
  print_endline "   only pm2_isomalloc'd data follows the thread (see linked_list.exe)."
